"""Interrupt handlers ("Interrupt" in Figure 8).

Handlers run in an "irq" thread context.  The job handler follows
Listing 1(b) closely: read the status register (a control dependency —
an early return if no interrupt is pending), clear what was seen, then
read per-slot completion state.  The read-and-clear pattern has the hidden
register dependency the paper calls out: the clear *write* consumes the
value of the status *read*, so order must be preserved by deferral.
"""

from __future__ import annotations

from repro.driver.hotfuncs import CommitCategory, hot_function
from repro.hw import regs
from repro.hw.regs import GpuIrq

IRQ_NONE = 0
IRQ_HANDLED = 1


class IrqHandlers:
    def __init__(self, kbdev) -> None:
        self.kbdev = kbdev
        self.job_irqs = 0
        self.gpu_irqs = 0
        self.mmu_irqs = 0
        self.spurious_irqs = 0

    @property
    def env(self):
        return self.kbdev.env

    # ------------------------------------------------------------------
    @hot_function(CommitCategory.INTERRUPT)
    def job_irq(self) -> int:
        kbdev = self.kbdev
        bus = kbdev.bus
        with kbdev.hwaccess_lock:
            done = bus.read32(regs.JOB_IRQ_STATUS)
            if not done:  # control dependency -> commit (Listing 1(b))
                self.spurious_irqs += 1
                return IRQ_NONE
            done = int(done)
            bus.write32(regs.JOB_IRQ_CLEAR, done)
            for slot in range(regs.NUM_JOB_SLOTS):
                if done & (1 << slot):
                    # Read completion status and the active-slot mask.
                    # (kbase reads JS_TAIL only on soft-stop paths; the
                    # tail address would be job-specific and would defeat
                    # speculation for no benefit.)
                    status = bus.read32(regs.js_reg(slot, regs.JS_STATUS))
                    js_state = bus.read32(regs.JOB_IRQ_JS_STATE)
                    kbdev.jobs.complete_slot(slot, status, js_state,
                                             failed=False)
                if done & (1 << (16 + slot)):
                    # Stays lazy until printk externalizes it (the hook
                    # commits first), then coerces cheaply for bookkeeping.
                    status = bus.read32(regs.js_reg(slot, regs.JS_STATUS))
                    self.env.printk(
                        "kbase: job fault on slot %d, status=%x", slot, status)
                    kbdev.jobs.complete_slot(slot, int(status), 0, failed=True)
            # Re-check for interrupts that arrived while handling (the
            # kbase handler loops until RAWSTAT is quiescent).
            remaining = bus.read32(regs.JOB_IRQ_RAWSTAT)
            if remaining:
                self.env.printk("kbase: job irq still pending: %x",
                                int(remaining))
            self.job_irqs += 1
        return IRQ_HANDLED

    # ------------------------------------------------------------------
    @hot_function(CommitCategory.INTERRUPT)
    def gpu_irq(self) -> int:
        kbdev = self.kbdev
        bus = kbdev.bus
        status = bus.read32(regs.GPU_IRQ_STATUS)
        if not status:
            self.spurious_irqs += 1
            return IRQ_NONE
        status = int(status)
        bus.write32(regs.GPU_IRQ_CLEAR, status)
        if status & GpuIrq.POWER_CHANGED_ALL:
            # Refresh the cached core availability (lazy until committed).
            kbdev.pm.shader_ready = bus.read32(regs.SHADER_READY_LO)
            bus.read32(regs.SHADER_READY_HI)
            bus.read32(regs.L2_READY_LO)
            bus.read32(regs.TILER_READY_LO)
            bus.read32(regs.GPU_STATUS)
        if status & GpuIrq.RESET_COMPLETED:
            kbdev.reset_completed = True
        if status & GpuIrq.FAULT:
            fault = bus.read32(regs.GPU_FAULTSTATUS)
            self.env.printk("kbase: GPU fault, status=%x", fault)
        self.gpu_irqs += 1
        return IRQ_HANDLED

    # ------------------------------------------------------------------
    @hot_function(CommitCategory.INTERRUPT)
    def mmu_irq(self) -> int:
        kbdev = self.kbdev
        bus = kbdev.bus
        status = bus.read32(regs.MMU_IRQ_STATUS)
        if not status:
            self.spurious_irqs += 1
            return IRQ_NONE
        status = int(status)
        bus.write32(regs.MMU_IRQ_CLEAR, status)
        for as_nr in range(regs.NUM_ADDRESS_SPACES):
            if status & (1 << as_nr):
                fault_status = bus.read32(
                    regs.as_reg(as_nr, regs.AS_FAULTSTATUS))
                fault_addr = bus.read64(
                    regs.as_reg(as_nr, regs.AS_FAULTADDRESS_LO),
                    regs.as_reg(as_nr, regs.AS_FAULTADDRESS_HI))
                self.env.printk(
                    "kbase: MMU fault as=%d status=%x va=%x",
                    as_nr, fault_status, fault_addr)
        self.mmu_irqs += 1
        return IRQ_HANDLED
