"""Job submission and completion tracking.

The job queue length is pinned to 1 (§5): the driver prepares and submits
one job, then sleeps until its completion interrupt.  That constraint is
what lets memory synchronization assume the driver and the GPU never touch
shared memory simultaneously.

The submit path reads ``LATEST_FLUSH`` — the history-dependent register
the paper identifies as the main source of unspeculatable commits (§7.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.driver.hotfuncs import CommitCategory, hot_function
from repro.hw import regs
from repro.hw.regs import JsCommand

JS_CONFIG_DEFAULT = 0x0000_7302  # start/end flush, low-priority compute
JOB_WAIT_TIMEOUT_S = 1200.0
# Nominal timeout a production driver would use; exceeding it is counted as
# a would-be timeout violation (§3.3: naive recording breaks timing
# assumptions and throws exceptions).
NOMINAL_JOB_TIMEOUT_S = 2.0


class JobFault(RuntimeError):
    """A submitted job completed with a fault status."""


@dataclass
class SlotState:
    busy: bool = False
    done: bool = False
    failed: bool = False
    status: int = 0
    js_state: int = 0


class JobManager:
    def __init__(self, kbdev) -> None:
        self.kbdev = kbdev
        self.slots = [SlotState() for _ in range(regs.NUM_JOB_SLOTS)]
        self.jobs_submitted = 0
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.timeout_violations = 0

    @property
    def env(self):
        return self.kbdev.env

    # ------------------------------------------------------------------
    @hot_function(CommitCategory.OTHER)
    def submit(self, job_va: int, slot: int = 0) -> None:
        """Program the NEXT registers and kick the slot.

        DriverShim recognizes the JS_COMMAND_NEXT=START write as the
        job-start boundary and synchronizes memory cloud->client right
        before it reaches the GPU (§5).
        """
        kbdev = self.kbdev
        state = self.slots[slot]
        if state.busy:
            raise RuntimeError(f"job slot {slot} is busy (queue length is 1)")
        with kbdev.hwaccess_lock:
            bus = kbdev.bus
            # Confirm the slot really is idle before programming NEXT
            # registers (kbase checks the active-slot mask and the pending
            # command; both read back deterministically between jobs).
            js_state = bus.read32(regs.JOB_IRQ_JS_STATE)
            if int(js_state) & (1 << slot):
                raise RuntimeError(f"hardware slot {slot} unexpectedly active")
            bus.read32(regs.js_reg(slot, regs.JS_COMMAND))
            # History-dependent value: defeats the speculation criteria.
            flush_id = bus.read32(regs.LATEST_FLUSH)
            bus.write64(regs.js_reg(slot, regs.JS_HEAD_NEXT_LO),
                        regs.js_reg(slot, regs.JS_HEAD_NEXT_HI), job_va)
            bus.write64(regs.js_reg(slot, regs.JS_AFFINITY_NEXT_LO),
                        regs.js_reg(slot, regs.JS_AFFINITY_NEXT_HI),
                        kbdev.pm.shader_ready)
            bus.write32(regs.js_reg(slot, regs.JS_CONFIG_NEXT),
                        JS_CONFIG_DEFAULT)
            bus.write32(regs.js_reg(slot, regs.JS_FLUSH_ID_NEXT), flush_id)
            state.busy = True
            state.done = False
            state.failed = False
            self.jobs_submitted += 1
            bus.write32(regs.js_reg(slot, regs.JS_COMMAND_NEXT),
                        JsCommand.START)

    # ------------------------------------------------------------------
    def wait_job(self, slot: int = 0) -> SlotState:
        """Sleep until the completion interrupt marks the slot done."""
        state = self.slots[slot]
        t0 = self.kbdev.env.clock.now
        self.kbdev.env.wait_event(lambda: state.done,
                                  timeout_s=JOB_WAIT_TIMEOUT_S)
        if self.kbdev.env.clock.now - t0 > NOMINAL_JOB_TIMEOUT_S:
            self.timeout_violations += 1
        state.busy = False
        if state.failed:
            self.jobs_failed += 1
            raise JobFault(
                f"job on slot {slot} faulted with status {state.status:#x}")
        self.jobs_completed += 1
        return state

    def complete_slot(self, slot: int, status, js_state, failed: bool) -> None:
        """Called from the job IRQ handler."""
        state = self.slots[slot]
        state.status = status
        state.js_state = js_state
        state.failed = failed
        state.done = True
