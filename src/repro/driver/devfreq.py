"""A devfreq-style DVFS governor for the GPU clock.

Real Mali drivers register with the kernel's devfreq framework: after
each sampling window the governor compares busy time against wall time
and steps the SoC clock up or down.  The governor here is the standard
"ondemand" shape (simple up/down thresholds over the job-to-job window).

GR-T interaction: DVFS is a *normal-world, native-execution* facility.
During record and replay the TEE pins the maximum frequency
(:meth:`~repro.hw.clocks.SocClockController.pin_max`), because a governor
reacting to measured utilization makes GPU timing — polling iteration
counts, interrupt arrival order — differ between record and replay,
violating the determinism GR requires (§2.3).  The test suite
demonstrates the violation when pinning is disabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hw.clocks import SocClockController
from repro.tee.worlds import SecurityViolation, World


@dataclass
class GovernorConfig:
    mode: str = "ondemand"  # or "performance"
    upthreshold: float = 0.85
    downthreshold: float = 0.30


class DevfreqGovernor:
    """Steps through the clock domain's operating points by utilization."""

    def __init__(self, clk: SocClockController,
                 config: Optional[GovernorConfig] = None) -> None:
        self.clk = clk
        self.config = config or GovernorConfig()
        self.samples = 0
        self.throttle_events = 0
        self.boost_events = 0

    # ------------------------------------------------------------------
    def update(self, busy_s: float, window_s: float) -> None:
        """One devfreq sampling window: busy time vs wall time."""
        self.samples += 1
        if self.config.mode == "performance":
            self._try_set(self.clk.domain.max_mhz)
            return
        if window_s <= 0:
            return
        utilization = min(busy_s / window_s, 1.0)
        rates = sorted(self.clk.domain.rates_mhz)
        index = rates.index(self.clk.rate_mhz)
        if utilization > self.config.upthreshold and index + 1 < len(rates):
            self._try_set(rates[index + 1])
            self.boost_events += 1
        elif utilization < self.config.downthreshold and index > 0:
            self._try_set(rates[index - 1])
            self.throttle_events += 1

    def _try_set(self, mhz: int) -> None:
        try:
            self.clk.set_rate(mhz, world=World.NORMAL)
        except SecurityViolation:
            # The TEE holds the clock (a record/replay session is live):
            # the normal-world governor simply loses this round, exactly
            # like a real clk framework call returning -EPERM.
            pass
