"""A kbase-like GPU driver for the modelled Mali GPU.

The driver is written exactly once and runs unmodified in three settings:

* **natively** on the client against a :class:`~repro.driver.bus.LocalBus`
  (the insecure baseline of Table 2);
* **in the cloud** against GR-T's DriverShim bus, where register accesses
  are deferred, speculated on, and shipped to the client GPU (§4);
* **during recovery**, against a fast-forward bus that feeds recorded GPU
  responses (§4.2).

That single-source property is the point of the paper's design: the shims
interpose the CPU/GPU boundary, never the driver logic.  Accordingly the
driver here is ordinary register-twiddling code — probe/quirk discovery,
power-domain sequencing, MMU/AS programming with in-memory page tables,
job submission and IRQ handling — with the idioms the paper's techniques
exploit: polling loops expressed as first-class specs (§4.3), hot
functions annotated for scoped deferral (§4.1), and a strict
lock/commit discipline (§4.1's release consistency).
"""

from repro.driver.bus import (
    LocalBus,
    PollCondition,
    PollResult,
    PollSpec,
    RegisterBus,
)
from repro.driver.driver import KbaseDevice, DriverError
from repro.driver.hotfuncs import hot_function, HOT_FUNCTIONS, CommitCategory

__all__ = [
    "RegisterBus",
    "LocalBus",
    "PollSpec",
    "PollCondition",
    "PollResult",
    "KbaseDevice",
    "DriverError",
    "hot_function",
    "HOT_FUNCTIONS",
    "CommitCategory",
]
