"""The register bus: the CPU/GPU boundary GR-T interposes.

Every driver register access flows through a :class:`RegisterBus`.  The
local implementation talks straight to the GPU model with on-chip access
cost; GR-T's DriverShim implements the same interface over the network
with deferral and speculation; the replayer and recovery paths implement
it from a log.

Polling loops are first-class here.  The paper's DriverShim finds *simple*
polling loops by static analysis of the driver source (§4.3: idempotent
register accesses, loop-local iteration count, no kernel APIs with
external impact).  Our driver expresses such loops as :class:`PollSpec`
values executed via :meth:`RegisterBus.poll` — the same information the
static analysis would extract, carried explicitly.  Complex loops simply
use raw reads and get no offload, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

# On-chip MMIO access latency (CPU side).
LOCAL_REG_ACCESS_S = 0.15e-6


class PollCondition:
    """Terminating predicates simple enough to offload (§4.3)."""

    BITS_CLEAR = "bits_clear"  # (value & mask) == 0
    BITS_SET = "bits_set"      # (value & mask) == mask
    EQUALS = "equals"          # value == operand

    @staticmethod
    def check(kind: str, value: int, operand: int) -> bool:
        if kind == PollCondition.BITS_CLEAR:
            return (value & operand) == 0
        if kind == PollCondition.BITS_SET:
            return (value & operand) == operand
        if kind == PollCondition.EQUALS:
            return value == operand
        raise ValueError(f"unknown poll condition {kind!r}")


@dataclass(frozen=True)
class PollSpec:
    """A simple polling loop: busy-wait on one register until a predicate.

    The fields mirror §4.3's conditions for offloadability: reads of
    ``offset`` are idempotent, the iteration count is local and bounded by
    ``max_iters``, and the loop body touches nothing else.
    """

    offset: int
    condition: str
    operand: int
    max_iters: int = 1000
    delay_per_iter_s: float = 1e-6
    tag: str = "poll"

    def satisfied_by(self, value: int) -> bool:
        return PollCondition.check(self.condition, value, self.operand)


@dataclass(frozen=True)
class PollResult:
    """Outcome of a polling loop: last value read and iterations used."""

    value: int
    iterations: int
    success: bool


class RegisterBus:
    """Abstract CPU-side access to GPU registers."""

    def read32(self, offset: int):
        raise NotImplementedError

    def write32(self, offset: int, value) -> None:
        raise NotImplementedError

    def poll(self, spec: PollSpec) -> PollResult:
        raise NotImplementedError

    # Convenience built on the primitives; shims inherit these.
    def read64(self, offset_lo: int, offset_hi: int):
        lo = self.read32(offset_lo)
        hi = self.read32(offset_hi)
        return (hi << 32) | lo

    def write64(self, offset_lo: int, offset_hi: int, value) -> None:
        self.write32(offset_lo, value & 0xFFFF_FFFF)
        self.write32(offset_hi, (value >> 32) & 0xFFFF_FFFF)


class LocalBus(RegisterBus):
    """Direct on-chip access to the GPU model.

    Used for native execution on the client (Table 2's baseline) and as
    the backend GPUShim drives on the client side of a GR-T session.
    """

    def __init__(self, gpu, clock, access_cost_s: float = LOCAL_REG_ACCESS_S) -> None:
        self.gpu = gpu
        self.clock = clock
        self.access_cost_s = access_cost_s
        self.reads = 0
        self.writes = 0
        self.polls = 0
        self.poll_iterations = 0

    def read32(self, offset: int) -> int:
        self.clock.advance(self.access_cost_s, label="cpu")
        self.reads += 1
        return self.gpu.read_reg(offset)

    def write32(self, offset: int, value) -> None:
        self.clock.advance(self.access_cost_s, label="cpu")
        self.writes += 1
        self.gpu.write_reg(offset, int(value))

    def poll(self, spec: PollSpec) -> PollResult:
        """Execute the loop locally, advancing time past hardware events so
        bounded waits terminate without wall-clock spinning."""
        self.polls += 1
        value = self.read32(spec.offset)
        iterations = 1
        while not spec.satisfied_by(value) and iterations < spec.max_iters:
            next_event = self.gpu.next_event_time()
            target = self.clock.now + spec.delay_per_iter_s
            if next_event is not None and next_event > target:
                # Nothing can change before the next hardware event; model
                # the intervening iterations in one step.
                skipped = int((next_event - self.clock.now)
                              / spec.delay_per_iter_s)
                iterations += min(skipped, spec.max_iters - iterations - 1)
                target = next_event
            self.clock.advance_to(target, label="cpu")
            value = self.read32(spec.offset)
            iterations += 1
        self.poll_iterations += iterations
        return PollResult(value=value, iterations=iterations,
                          success=spec.satisfied_by(value))
