"""Hardware discovery and quirk handling ("Init" in Figure 8).

At load time the driver probes tens of feature registers, branches on the
product id, and applies per-SKU configuration quirks (the Listing 1(a)
pattern: read SHADER_CONFIG / MMU config, OR in quirk bits, write back).
These accesses recur identically across record runs, which is why Init
commits are highly speculatable (§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.driver.bus import PollCondition, PollSpec
from repro.driver.hotfuncs import CommitCategory, hot_function
from repro.hw import regs
from repro.hw.regs import GpuIrq

# Product-id ranges per family (mirrors sku.py's encoding).
MIDGARD_PRODUCT_MAX = 0x0FFF

# Quirk bits, kbase style.
SHADER_CONFIG_LS_ALLOW_ATTR_TYPES = 1 << 16
MMU_ALLOW_SNOOP_DISPARITY = 1 << 10
TILER_CONFIG_EARLY_Z = 1 << 5


@dataclass
class RawGpuProps:
    """Register values captured at probe; may hold lazy symbolic values
    until the probe commit resolves them."""

    gpu_id: int = 0
    l2_features: object = 0
    core_features: object = 0
    tiler_features: object = 0
    mem_features: object = 0
    mmu_features: object = 0
    as_present: object = 0
    js_present: object = 0
    shader_present: object = 0
    tiler_present: object = 0
    l2_present: object = 0
    thread_max_threads: object = 0
    thread_max_workgroup: object = 0
    thread_max_barrier: object = 0
    thread_features: object = 0
    texture_features: List[object] = field(default_factory=list)
    js_features: List[object] = field(default_factory=list)


class GpuProber:
    """Reset + discovery + quirks, run once when the driver binds."""

    def __init__(self, kbdev) -> None:
        self.kbdev = kbdev

    @property
    def env(self):
        return self.kbdev.env

    # ------------------------------------------------------------------
    @hot_function(CommitCategory.INIT)
    def soft_reset(self) -> None:
        """Reset the GPU and wait for RESET_COMPLETED (polled)."""
        bus = self.kbdev.bus
        bus.write32(regs.GPU_IRQ_CLEAR, 0xFFFF_FFFF)
        bus.write32(regs.GPU_IRQ_MASK, GpuIrq.RESET_COMPLETED)
        bus.write32(regs.GPU_COMMAND, regs.GpuCommand.SOFT_RESET)
        result = bus.poll(PollSpec(
            offset=regs.GPU_IRQ_RAWSTAT,
            condition=PollCondition.BITS_SET,
            operand=GpuIrq.RESET_COMPLETED,
            max_iters=500,
            delay_per_iter_s=10e-6,
            tag="reset-wait",
        ))
        if not result.success:
            self.env.printk("kbase: GPU reset timed out, rawstat=%x",
                            result.value)
            raise TimeoutError("GPU soft reset did not complete")
        bus.write32(regs.GPU_IRQ_CLEAR, GpuIrq.RESET_COMPLETED)

    # ------------------------------------------------------------------
    @hot_function(CommitCategory.INIT)
    def discover(self) -> RawGpuProps:
        """Read the feature/present register block (§4.2: "repeated
        hardware discovery" — values never change, highly predictable)."""
        bus = self.kbdev.bus
        props = RawGpuProps()
        # The driver branches on the product id immediately (PTE format,
        # quirk selection): a genuine control dependency.
        # repro-check: allow[sym-force] -- gpu_id gates PTE format and quirk selection on the very next statements; forcing at the read site is the Listing 1(b) control dependency itself, and probe runs once per session
        props.gpu_id = int(bus.read32(regs.GPU_ID))
        props.l2_features = bus.read32(regs.L2_FEATURES)
        props.core_features = bus.read32(regs.CORE_FEATURES)
        props.tiler_features = bus.read32(regs.TILER_FEATURES)
        props.mem_features = bus.read32(regs.MEM_FEATURES)
        props.mmu_features = bus.read32(regs.MMU_FEATURES)
        props.as_present = bus.read32(regs.AS_PRESENT)
        props.js_present = bus.read32(regs.JS_PRESENT)
        props.thread_max_threads = bus.read32(regs.THREAD_MAX_THREADS)
        props.thread_max_workgroup = bus.read32(regs.THREAD_MAX_WORKGROUP_SIZE)
        props.thread_max_barrier = bus.read32(regs.THREAD_MAX_BARRIER_SIZE)
        props.thread_features = bus.read32(regs.THREAD_FEATURES)
        props.texture_features = [
            bus.read32(regs.TEXTURE_FEATURES_0 + 4 * i) for i in range(3)
        ]
        props.js_features = [
            bus.read32(regs.JS0_FEATURES + 4 * i)
            for i in range(regs.NUM_JOB_SLOTS)
        ]
        props.shader_present = bus.read64(regs.SHADER_PRESENT_LO,
                                          regs.SHADER_PRESENT_HI)
        props.tiler_present = bus.read64(regs.TILER_PRESENT_LO,
                                         regs.TILER_PRESENT_HI)
        props.l2_present = bus.read64(regs.L2_PRESENT_LO, regs.L2_PRESENT_HI)
        return props

    # ------------------------------------------------------------------
    @hot_function(CommitCategory.INIT)
    def apply_quirks(self, coherency_ace: bool = False) -> None:
        """Listing 1(a): read config registers, OR in quirk bits, write
        back — the write value *data-depends* on the deferred reads."""
        bus = self.kbdev.bus
        qrk_shader = bus.read32(regs.SHADER_CONFIG)
        qrk_tiler = bus.read32(regs.TILER_CONFIG)
        qrk_mmu = bus.read32(regs.L2_MMU_CONFIG)

        qrk_shader = qrk_shader | SHADER_CONFIG_LS_ALLOW_ATTR_TYPES
        if coherency_ace:
            qrk_mmu = qrk_mmu | MMU_ALLOW_SNOOP_DISPARITY
        product_id = self.kbdev.props.gpu_id >> 16
        if product_id >= 0x6000:  # Bifrost parts want early-Z tiling
            qrk_tiler = qrk_tiler | TILER_CONFIG_EARLY_Z

        bus.write32(regs.SHADER_CONFIG, qrk_shader)
        bus.write32(regs.TILER_CONFIG, qrk_tiler)
        bus.write32(regs.L2_MMU_CONFIG, qrk_mmu)

    @hot_function(CommitCategory.INIT)
    def enable_interrupts(self) -> None:
        bus = self.kbdev.bus
        bus.write32(regs.JOB_IRQ_CLEAR, 0xFFFF_FFFF)
        bus.write32(regs.JOB_IRQ_MASK, 0xFFFF_FFFF)
        bus.write32(regs.MMU_IRQ_CLEAR, 0xFFFF_FFFF)
        bus.write32(regs.MMU_IRQ_MASK, 0xFFFF_FFFF)
        # CLEAN_CACHES_COMPLETED is deliberately left masked: the cache
        # flush path owns it by polling GPU_IRQ_RAWSTAT (§4.3's loops).
        bus.write32(regs.GPU_IRQ_CLEAR, 0xFFFF_FFFF)
        bus.write32(regs.GPU_IRQ_MASK,
                    GpuIrq.POWER_CHANGED_ALL | GpuIrq.RESET_COMPLETED
                    | GpuIrq.FAULT)

    @staticmethod
    def pte_format_for(gpu_id: int) -> int:
        """Midgard parts use layout 0, Bifrost and later layout 1 (§2.4)."""
        product_id = gpu_id >> 16
        return 0 if product_id <= MIDGARD_PRODUCT_MAX else 1
