"""GPU power-domain sequencing ("Power state" in Figure 8).

The driver powers the L2 / tiler / shader domains up before a job and back
down when idle (an aggressive coarse-demand policy, which also keeps the
record run deterministic).  Each transition is a fixed register dance —
PWRON/PWROFF writes followed by polls on READY/PWRTRANS — whose values
repeat across jobs, making these commits prime speculation targets (§4.2:
"each time an idle GPU wakes up, the driver exercises the GPU's power
state machine").
"""

from __future__ import annotations

from repro.driver.bus import PollCondition, PollSpec
from repro.driver.hotfuncs import CommitCategory, hot_function
from repro.hw import regs

POWER_POLL_DELAY_S = 20e-6
POWER_POLL_ITERS = 2000


class PowerManager:
    def __init__(self, kbdev) -> None:
        self.kbdev = kbdev
        self.gpu_powered = False
        self.shader_ready = 0  # may hold a lazy value until resolved
        self.power_cycles = 0

    @property
    def env(self):
        return self.kbdev.env

    # ------------------------------------------------------------------
    @hot_function(CommitCategory.POWER)
    def power_up(self) -> None:
        """Power the domain chain L2 -> tiler -> shaders."""
        kbdev = self.kbdev
        with kbdev.pm_lock:
            if self.gpu_powered:
                return
            bus = kbdev.bus
            l2_mask = int(kbdev.props.l2_present)
            tiler_mask = int(kbdev.props.tiler_present)
            shader_mask = int(kbdev.props.shader_present)

            domains = (
                ("l2", l2_mask, regs.L2_PWRON_LO, regs.L2_PWRTRANS_LO,
                 regs.L2_READY_LO),
                ("tiler", tiler_mask, regs.TILER_PWRON_LO,
                 regs.TILER_PWRTRANS_LO, regs.TILER_READY_LO),
                ("shader", shader_mask, regs.SHADER_PWRON_LO,
                 regs.SHADER_PWRTRANS_LO, regs.SHADER_READY_LO),
            )
            for name, mask, pwron, pwrtrans, ready in domains:
                # Skip domains something else already powered (reads the
                # current READY state, as kbase does).
                current = bus.read64(ready, ready + 4)
                bus.write32(pwron, mask)
                self._wait_transitions_done(pwrtrans, name)
                self._wait_ready(ready, mask, name)
                # Confirm with a full 64-bit readback.
                bus.read64(ready, ready + 4)

            # Captured for job affinity; stays lazy until the next commit.
            self.shader_ready = bus.read32(regs.SHADER_READY_LO)
            self.gpu_powered = True
            self.power_cycles += 1
        # The POWER_CHANGED interrupt the transitions raised is fielded now.
        kbdev.sync_pending_irqs()

    @hot_function(CommitCategory.POWER)
    def power_down(self) -> None:
        kbdev = self.kbdev
        with kbdev.pm_lock:
            if not self.gpu_powered:
                return
            bus = kbdev.bus
            domains = (
                ("shader", int(kbdev.props.shader_present),
                 regs.SHADER_PWROFF_LO, regs.SHADER_PWRTRANS_LO,
                 regs.SHADER_READY_LO),
                ("tiler", int(kbdev.props.tiler_present),
                 regs.TILER_PWROFF_LO, regs.TILER_PWRTRANS_LO,
                 regs.TILER_READY_LO),
                ("l2", int(kbdev.props.l2_present),
                 regs.L2_PWROFF_LO, regs.L2_PWRTRANS_LO, regs.L2_READY_LO),
            )
            for name, mask, pwroff, pwrtrans, ready in domains:
                bus.write32(pwroff, mask)
                self._wait_transitions_done(pwrtrans, name)
                # Confirm the domain reports no ready cores.
                self._wait_cores_off(ready, name)
            self.gpu_powered = False
            self.shader_ready = 0
        kbdev.sync_pending_irqs()

    # ------------------------------------------------------------------
    def _wait_ready(self, ready_reg: int, mask: int, domain: str) -> None:
        result = self.kbdev.watchdog_poll(PollSpec(
            offset=ready_reg,
            condition=PollCondition.BITS_SET,
            operand=mask,
            max_iters=POWER_POLL_ITERS,
            delay_per_iter_s=POWER_POLL_DELAY_S,
            tag=f"pwron-{domain}",
        ))
        if not result.success:
            self.env.printk("kbase: %s power-on timed out (ready=%x)",
                            domain, result.value)
            raise TimeoutError(f"{domain} domain failed to power on")

    def _wait_cores_off(self, ready_reg: int, domain: str) -> None:
        result = self.kbdev.watchdog_poll(PollSpec(
            offset=ready_reg,
            condition=PollCondition.BITS_CLEAR,
            operand=0xFFFF_FFFF,
            max_iters=POWER_POLL_ITERS,
            delay_per_iter_s=POWER_POLL_DELAY_S,
            tag=f"pwroff-ready-{domain}",
        ))
        if not result.success:
            self.env.printk("kbase: %s cores stuck ready (ready=%x)",
                            domain, result.value)
            raise TimeoutError(f"{domain} cores failed to power off")

    def _wait_transitions_done(self, pwrtrans_reg: int, domain: str) -> None:
        result = self.kbdev.watchdog_poll(PollSpec(
            offset=pwrtrans_reg,
            condition=PollCondition.BITS_CLEAR,
            operand=0xFFFF_FFFF,
            max_iters=POWER_POLL_ITERS,
            delay_per_iter_s=POWER_POLL_DELAY_S,
            tag=f"pwroff-{domain}",
        ))
        if not result.success:
            self.env.printk("kbase: %s power-off stuck (pwrtrans=%x)",
                            domain, result.value)
            raise TimeoutError(f"{domain} domain stuck in transition")
