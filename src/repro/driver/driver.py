"""The kbase-like GPU device driver: the facade tying it all together.

``KbaseDevice`` owns the locks, the probed properties, the page tables,
and the probe/power/job/irq subcomponents.  ``run_compute_job`` is the
whole per-job flow the runtime calls: power up, TLB maintenance, submit,
sleep until the completion IRQ, flush caches, power back down — the
sequence whose register traffic GR-T records.

``LocalPlatform`` is the native backing: it delivers the model GPU's
interrupts into the driver's handlers and fast-forwards virtual time to
the next hardware event while the driver sleeps.
"""

from __future__ import annotations

from typing import Optional

from repro.driver.bus import PollCondition, PollSpec, RegisterBus
from repro.driver.hotfuncs import CommitCategory, hot_function
from repro.driver.irq import IrqHandlers
from repro.driver.jobs import JobFault, JobManager
from repro.driver.mmu_driver import MmuTables
from repro.driver.power import PowerManager
from repro.driver.probe import GpuProber, RawGpuProps
from repro.hw import regs
from repro.hw.gpu import GpuIrqLine, MaliGpu
from repro.hw.memory import PhysicalMemory
from repro.hw.regs import AsCommand, AsStatusBits, GpuCommand, GpuIrq
from repro.kernel.env import KernelEnv, Platform
from repro.kernel.locks import Mutex, SpinLock

MEMATTR_DEFAULT = 0x8888_8888_8888_8888
TRANSCFG_DEFAULT = 0x0000_0003
AS_POLL_DELAY_S = 1e-6
CACHE_POLL_DELAY_S = 2e-6


class DriverError(RuntimeError):
    """Driver-level failure (bad state, probe mismatch, ...)."""


class KbaseDevice:
    """One bound GPU device instance."""

    def __init__(self, env: KernelEnv, bus: RegisterBus,
                 mem: PhysicalMemory, coherency_ace: bool = False) -> None:
        self.env = env
        self.bus = bus
        self.mem = mem
        self.coherency_ace = coherency_ace

        self.hwaccess_lock = SpinLock(env, "hwaccess")
        self.pm_lock = Mutex(env, "pm")
        self.mmu_lock = Mutex(env, "mmu")

        self.props = RawGpuProps()
        self.prober = GpuProber(self)
        self.pm = PowerManager(self)
        self.jobs = JobManager(self)
        self.irq = IrqHandlers(self)

        self.mmu_tables: Optional[MmuTables] = None
        self.as_configured = False
        self.reset_completed = False
        self.probed = False
        self.cache_flushes = 0
        self.devfreq = None  # optional DevfreqGovernor (native DVFS)
        self._last_job_end_s: Optional[float] = None
        # §3.3: polls that took far longer than the hardware budget they
        # were written for — the timing-assumption violations that make
        # a GPU stack "constantly throw exceptions" under naive
        # forwarding.
        self.timing_violations = 0

    def watchdog_poll(self, spec: PollSpec):
        """Run a polling loop and flag nominal-budget violations.

        The budget is what the loop was written for: max_iters iterations
        at the on-chip delay.  Network round trips blowing through it are
        §3.3's broken timing assumptions.
        """
        t0 = self.env.clock.now
        result = self.bus.poll(spec)
        budget = spec.max_iters * spec.delay_per_iter_s
        if self.env.clock.now - t0 > budget:
            self.timing_violations += 1
        return result

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def probe(self) -> None:
        """Driver bind: reset, discover features, quirks, enable IRQs."""
        self.env.kernel_api("module_init")
        self.prober.soft_reset()
        self.props = self.prober.discover()
        pte_format = GpuProber.pte_format_for(self.props.gpu_id)
        self.mmu_tables = MmuTables(self.mem, pte_format)
        self.prober.apply_quirks(self.coherency_ace)
        self.prober.enable_interrupts()
        self.probed = True
        self.env.printk("kbase: probed GPU id=%x", self.props.gpu_id)

    def teardown(self) -> None:
        if self.pm.gpu_powered:
            self.pm.power_down()
        self.env.kernel_api("module_exit")

    # ------------------------------------------------------------------
    # MMU programming
    # ------------------------------------------------------------------
    @hot_function(CommitCategory.POLLING)
    def mmu_configure(self, as_nr: int = 0) -> None:
        """Point the AS at the page table root and wait for the update."""
        if self.mmu_tables is None:
            raise DriverError("mmu_configure before probe")
        with self.mmu_lock:
            bus = self.bus
            bus.write64(regs.as_reg(as_nr, regs.AS_TRANSTAB_LO),
                        regs.as_reg(as_nr, regs.AS_TRANSTAB_HI),
                        self.mmu_tables.root_pa)
            bus.write64(regs.as_reg(as_nr, regs.AS_MEMATTR_LO),
                        regs.as_reg(as_nr, regs.AS_MEMATTR_HI),
                        MEMATTR_DEFAULT)
            bus.write64(regs.as_reg(as_nr, regs.AS_TRANSCFG_LO),
                        regs.as_reg(as_nr, regs.AS_TRANSCFG_HI),
                        TRANSCFG_DEFAULT)
            bus.write32(regs.as_reg(as_nr, regs.AS_COMMAND), AsCommand.UPDATE)
            self._wait_as_idle(as_nr, "update")
            self.as_configured = True

    @hot_function(CommitCategory.POLLING)
    def mmu_flush(self, as_nr: int = 0, lock_va: int = 0) -> None:
        """Lock/flush/unlock dance after page table changes (Listing 2)."""
        with self.mmu_lock:
            bus = self.bus
            bus.write64(regs.as_reg(as_nr, regs.AS_LOCKADDR_LO),
                        regs.as_reg(as_nr, regs.AS_LOCKADDR_HI), lock_va)
            bus.write32(regs.as_reg(as_nr, regs.AS_COMMAND), AsCommand.LOCK)
            self._wait_as_idle(as_nr, "lock")
            bus.write32(regs.as_reg(as_nr, regs.AS_COMMAND),
                        AsCommand.FLUSH_MEM)
            self._wait_as_idle(as_nr, "flush")
            bus.write32(regs.as_reg(as_nr, regs.AS_COMMAND), AsCommand.UNLOCK)

    def _wait_as_idle(self, as_nr: int, what: str) -> None:
        result = self.watchdog_poll(PollSpec(
            offset=regs.as_reg(as_nr, regs.AS_STATUS),
            condition=PollCondition.BITS_CLEAR,
            operand=AsStatusBits.ACTIVE,
            max_iters=1000,
            delay_per_iter_s=AS_POLL_DELAY_S,
            tag=f"as-{what}",
        ))
        if not result.success:
            self.env.printk("kbase: AS%d stuck on %s", as_nr, what)
            raise TimeoutError(f"AS{as_nr} {what} did not complete")

    def map_gpu_pages(self, va: int, pa: int, nbytes: int, flags: int) -> None:
        """Insert page table entries and flush the GPU TLB if live."""
        if self.mmu_tables is None:
            raise DriverError("map before probe")
        self.mmu_tables.insert_pages(va, pa, nbytes, flags)
        if self.as_configured and self.pm.gpu_powered:
            self.mmu_flush(lock_va=va)

    # ------------------------------------------------------------------
    # Cache maintenance
    # ------------------------------------------------------------------
    @hot_function(CommitCategory.POLLING)
    def cache_flush(self) -> None:
        """CLEAN_INV_CACHES and poll RAWSTAT for completion (§4.3's
        motivating loop: the polled operation is much shorter than an
        RTT)."""
        with self.hwaccess_lock:
            bus = self.bus
            bus.write32(regs.GPU_COMMAND, GpuCommand.CLEAN_INV_CACHES)
            result = self.watchdog_poll(PollSpec(
                offset=regs.GPU_IRQ_RAWSTAT,
                condition=PollCondition.BITS_SET,
                operand=GpuIrq.CLEAN_CACHES_COMPLETED,
                max_iters=1000,
                delay_per_iter_s=CACHE_POLL_DELAY_S,
                tag="cache-flush",
            ))
            if not result.success:
                raise TimeoutError("cache flush did not complete")
            bus.write32(regs.GPU_IRQ_CLEAR, GpuIrq.CLEAN_CACHES_COMPLETED)
        self.cache_flushes += 1
        # Drivers use an explicit delay as a barrier after flushes (§4.1).
        self.env.delay(1e-6)

    # ------------------------------------------------------------------
    # The per-job flow the runtime invokes
    # ------------------------------------------------------------------
    def recover_from_job_fault(self) -> None:
        """A job completed with a fault status: reset the GPU to a clean
        state (the standard kbase fault path) so later jobs can run."""
        self.env.printk("kbase: resetting GPU after job fault")
        self.pm.gpu_powered = False
        self.pm.shader_ready = 0
        self.as_configured = False
        self.prober.soft_reset()
        self.prober.enable_interrupts()
        for state in self.jobs.slots:
            state.busy = False
            state.done = False

    def run_compute_job(self, job_va: int, slot: int = 0,
                        power_cycle: bool = True) -> None:
        if not self.probed:
            raise DriverError("device not probed")
        self.pm.power_up()
        if not self.as_configured:
            self.mmu_configure()
        # Per-job TLB maintenance: the GPU MMU may hold stale entries from
        # the previous job's address-space activity.
        self.mmu_flush(lock_va=job_va)
        self.cache_flush()  # make CPU-emitted commands/shaders visible
        self.jobs.submit(job_va, slot)
        busy_start = self.env.clock.now
        try:
            self.jobs.wait_job(slot)
        except JobFault:
            self.recover_from_job_fault()
            raise
        busy_end = self.env.clock.now
        self.cache_flush()  # make GPU results visible to the CPU
        if power_cycle:
            self.pm.power_down()
        if self.devfreq is not None:
            window_start = (self._last_job_end_s
                            if self._last_job_end_s is not None
                            else busy_start)
            self.devfreq.update(busy_s=busy_end - busy_start,
                                window_s=max(busy_end - window_start,
                                             1e-9))
        self._last_job_end_s = self.env.clock.now

    # ------------------------------------------------------------------
    # IRQ plumbing
    # ------------------------------------------------------------------
    def dispatch_irq(self, line: str) -> int:
        handler = {
            GpuIrqLine.JOB: self.irq.job_irq,
            GpuIrqLine.GPU: self.irq.gpu_irq,
            GpuIrqLine.MMU: self.irq.mmu_irq,
        }[line]
        return self.env.run_in_context("irq", handler)

    def sync_pending_irqs(self) -> None:
        """Field interrupts that are already pending (e.g. POWER_CHANGED
        raised while we polled READY)."""
        platform = self.env.platform
        deliver = getattr(platform, "deliver_pending", None)
        if deliver:
            deliver()


class LocalPlatform(Platform):
    """Native backing: the GPU model is on-chip."""

    def __init__(self, gpu: MaliGpu, env: KernelEnv) -> None:
        self.gpu = gpu
        self.env = env
        self.kbdev: Optional[KbaseDevice] = None
        env.platform = self
        gpu.irq_sink = self._irq_raised
        self._delivering = False

    def attach(self, kbdev: KbaseDevice) -> None:
        self.kbdev = kbdev

    def _irq_raised(self, line: str) -> None:
        # Level-triggered: picked up by deliver_pending / wait_for_event.
        pass

    def deliver_pending(self) -> None:
        if self.kbdev is None or self._delivering:
            return
        self._delivering = True
        try:
            for _ in range(64):
                line = self.gpu.any_irq_pending()
                if line is None:
                    return
                self.kbdev.dispatch_irq(line)
            raise DriverError("interrupt storm: handlers not clearing IRQs")
        finally:
            self._delivering = False

    def wait_for_event(self, env: KernelEnv, timeout_s: float) -> bool:
        self.deliver_pending()
        next_event = self.gpu.next_event_time()
        if next_event is None:
            return False
        label = "gpu" if not self.gpu.is_idle() else "idle"
        env.clock.advance_to(min(next_event, env.clock.now + timeout_s),
                             label=label)
        self.gpu.service()
        self.deliver_pending()
        return True
