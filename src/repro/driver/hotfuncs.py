"""Hot-function annotation and the offline register-access profile (§4.1).

The paper narrows deferral to "hot" driver functions — the tens of
functions that issue >90% of register accesses — found by profiling once
per driver.  Here a decorator marks those functions; entry/exit notify the
kernel hooks so DriverShim can (a) enable deferral only inside them and
(b) commit queued accesses on exit.  Each hot function also carries the
commit *category* used for Figure 8's breakdown (Init / Interrupt /
Power state / Polling).

:func:`profile_register_accesses` reproduces the offline profiling step:
run a workload on a counting bus and bin accesses by driver function.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional


class CommitCategory:
    """Figure 8's four categories of speculated commits."""

    INIT = "init"
    INTERRUPT = "interrupt"
    POWER = "power"
    POLLING = "polling"
    OTHER = "other"

    ALL = (INIT, INTERRUPT, POWER, POLLING, OTHER)


@dataclass(frozen=True)
class HotFunction:
    name: str
    category: str


#: Registry of annotated hot functions, the analogue of the profiled list
#: the paper's instrumentation tool consumes (19 functions for Mali r24).
HOT_FUNCTIONS: Dict[str, HotFunction] = {}


def hot_function(category: str) -> Callable:
    """Mark a driver method as hot; deferral is scoped to these (§4.1).

    The decorated method's ``self`` must expose ``env`` (a
    :class:`~repro.kernel.env.KernelEnv`); entry/exit are reported through
    ``env.hooks`` via ``on_hot_enter``/``on_hot_exit`` when present.
    """

    def decorate(fn: Callable) -> Callable:
        name = fn.__qualname__
        HOT_FUNCTIONS[name] = HotFunction(name=name, category=category)

        @functools.wraps(fn)
        def wrapper(self, *args, **kwargs):
            env = self.env
            for hook in env.hooks:
                enter = getattr(hook, "on_hot_enter", None)
                if enter:
                    enter(env, name, category)
            try:
                return fn(self, *args, **kwargs)
            finally:
                for hook in env.hooks:
                    leave = getattr(hook, "on_hot_exit", None)
                    if leave:
                        leave(env, name, category)

        wrapper.hot_category = category
        wrapper.hot_name = name
        return wrapper

    return decorate


@dataclass
class AccessProfile:
    """Result of offline profiling: register accesses per driver function."""

    per_function: Dict[str, int]

    def hottest(self, coverage: float = 0.9) -> List[str]:
        """Smallest set of functions covering ``coverage`` of accesses."""
        total = sum(self.per_function.values())
        if total == 0:
            return []
        chosen: List[str] = []
        covered = 0
        for name, count in sorted(self.per_function.items(),
                                  key=lambda kv: -kv[1]):
            chosen.append(name)
            covered += count
            if covered >= coverage * total:
                break
        return chosen


class ProfilingHook:
    """Kernel hook that attributes register accesses to hot functions.

    Attach to an env, run a workload on a counting bus, read
    ``profile()``.  This is the "profiling is done once per GPU driver"
    step of §4.1, reproduced rather than assumed.
    """

    def __init__(self) -> None:
        self._stack: List[str] = []
        self.counts: Dict[str, int] = {}

    # KernelHooks duck-typed extras:
    def on_hot_enter(self, env, name: str, category: str) -> None:
        self._stack.append(name)

    def on_hot_exit(self, env, name: str, category: str) -> None:
        if self._stack and self._stack[-1] == name:
            self._stack.pop()

    # KernelHooks interface (unused parts are inherited no-ops).
    def on_kernel_api(self, env, name: str) -> None: ...
    def on_lock(self, env, lock_name: str) -> None: ...
    def on_unlock(self, env, lock_name: str) -> None: ...
    def on_delay(self, env, seconds: float) -> None: ...
    def on_thread_switch(self, env, ctx) -> None: ...

    def record_access(self) -> None:
        where = self._stack[-1] if self._stack else "<cold>"
        self.counts[where] = self.counts.get(where, 0) + 1

    def profile(self) -> AccessProfile:
        return AccessProfile(per_function=dict(self.counts))

    def current_function(self) -> Optional[str]:
        return self._stack[-1] if self._stack else None

    def current_category(self) -> str:
        for name in reversed(self._stack):
            hf = HOT_FUNCTIONS.get(name)
            if hf is not None:
                return hf.category
        return CommitCategory.OTHER
