"""Store protocol, keys, stats, and receipts for compiled artifacts.

The store is the second tier of the compiled-recording cache (memory →
store → compile+publish, see
:meth:`repro.fleet.registry.RecordingRegistry.compiled_for`): a
content-addressed map from (recording digest × compiler version ×
artifact-schema version) to a serialized
:class:`~repro.core.compiled.CompiledRecording`, bucketed per tenant.
Like the registry it never serves an entry across tenants (§7.1 —
nothing derived from a tenant's recording is shared); unlike the
registry it survives the process, so a restarted fleet/serve worker
opens its programs instead of recompiling them.

Two implementations ship: :class:`~repro.store.memory.MemoryStore`
(process-local, exercises the full artifact codec) and
:class:`~repro.store.disk.DiskStore` (on-disk, ``np.memmap`` loads,
atomic publish, LRU eviction).  Anything with the same ``get``/``put``
surface plugs in.
"""

# repro-check: module-allow[determinism] -- the store is host-side cache
# infrastructure: eviction receipts and LRU ordering are stamped with the
# wall clock and never enter a recording or a replayed timeline

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Protocol, Tuple

from repro.core.compiled import ARTIFACT_VERSION, COMPILER_VERSION
from repro.fleet.registry import TenantIsolationError
from repro.obs.metrics import StatsBase

__all__ = [
    "ArtifactKey", "EvictionReceipt", "Store", "StoreError", "StoreStats",
    "TenantIsolationError",
]


class StoreError(RuntimeError):
    """The store itself failed (I/O, invalid blob) — distinct from a
    miss (``None``) and from :class:`TenantIsolationError`."""


@dataclass(frozen=True)
class ArtifactKey:
    """The content address of one compiled artifact.

    The digest names the recording; the two version fields fence off
    incompatible producers — bumping either orphans old entries (they
    simply stop matching and age out via eviction) instead of serving a
    stale layout to a newer reader.
    """

    recording_digest: str
    compiler_version: int = COMPILER_VERSION
    schema_version: int = ARTIFACT_VERSION

    @classmethod
    def current(cls, recording_digest: str) -> "ArtifactKey":
        """The key a compile produced by *this* build publishes under."""
        return cls(recording_digest)

    def filename(self) -> str:
        return (f"{self.recording_digest}"
                f"-c{self.compiler_version}-s{self.schema_version}.grta")

    def as_tuple(self) -> Tuple[str, int, int]:
        return (self.recording_digest, self.compiler_version,
                self.schema_version)


@dataclass
class StoreStats(StatsBase):
    SCHEMA = "repro.store"

    hits: int = 0
    misses: int = 0
    publishes: int = 0
    evictions: int = 0
    #: Artifacts that failed integrity/identity checks on open and were
    #: rejected (and dropped) instead of served.
    corrupt_rejected: int = 0
    bytes_published: int = 0
    bytes_evicted: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass(frozen=True)
class EvictionReceipt:
    """Proof of one artifact leaving the store.

    Receipts make eviction auditable: a size-bounded store discards
    state that took real compile time to produce, so the ledger records
    who lost what, how big it was, and why.
    """

    tenant_id: str
    recording_digest: str
    nbytes: int
    reason: str            # "size" | "tenant" | "explicit" | "corrupt"
    evicted_at: float

    @classmethod
    def now(cls, tenant_id: str, recording_digest: str, nbytes: int,
            reason: str) -> "EvictionReceipt":
        return cls(tenant_id, recording_digest, nbytes, reason, time.time())


class Store(Protocol):
    """What the registry's second tier requires of a store."""

    stats: StoreStats

    def get(self, tenant_id: str, key: ArtifactKey):
        """The tenant's compiled recording for ``key``, or ``None``.

        Must never return another tenant's entry: a same-key lookup by
        the wrong tenant is a miss; an entry discovered to belong to a
        different tenant raises :class:`TenantIsolationError`.  Corrupt
        or stale-version artifacts are rejected (counted, dropped) and
        reported as a miss — never served.
        """

    def put(self, tenant_id: str, key: ArtifactKey,
            blob: bytes) -> List[EvictionReceipt]:
        """Publish an artifact blob atomically; returns any eviction
        receipts the publish triggered (size-bounded stores)."""
