"""Content-addressed store for compiled replay artifacts.

See :mod:`repro.store.base` for the protocol and
:mod:`repro.store.disk` for the on-disk layout.  User code usually
passes a path (or a store object) to ``repro.replay(store=...)`` /
``--store`` and never touches this package directly.
"""

from __future__ import annotations

import os
from typing import Optional, Union

from repro.core import config
from repro.store.base import (ArtifactKey, EvictionReceipt, Store,
                              StoreError, StoreStats, TenantIsolationError)
from repro.store.disk import DiskStore
from repro.store.memory import MemoryStore

__all__ = [
    "ArtifactKey", "DiskStore", "EvictionReceipt", "MemoryStore", "Store",
    "StoreError", "StoreStats", "TenantIsolationError", "resolve_store",
    "resolve_store_path",
]


def resolve_store(store: Union[None, str, os.PathLike, Store],
                  sanitizer=None, tracer=None) -> Optional[Store]:
    """Resolve the public ``store=`` / ``--store`` knob to a Store.

    ``None`` falls back to the ``REPRO_STORE`` environment variable
    (via :func:`repro.core.config.store_env`, the sanctioned env read);
    a string/path becomes a :class:`DiskStore` rooted there; an object
    with the protocol surface passes through unchanged.
    """
    if store is None:
        env_path = config.store_env()
        if env_path is None:
            return None
        return DiskStore(env_path, sanitizer=sanitizer, tracer=tracer)
    if isinstance(store, (str, os.PathLike)):
        return DiskStore(store, sanitizer=sanitizer, tracer=tracer)
    if hasattr(store, "get") and hasattr(store, "put"):
        return store
    raise TypeError(
        f"store must be a path or an object with get/put, "
        f"got {type(store).__name__}")


def resolve_store_path(store: Union[None, str, os.PathLike,
                                    DiskStore]) -> str:
    """The ``store=`` knob as a filesystem path (``""`` when unset).

    The multiprocessing serve pool ships only the path across the
    process boundary — each worker opens its own :class:`DiskStore` on
    it — so process-local stores (:class:`MemoryStore`) are rejected
    here rather than silently un-shared.
    """
    if store is None:
        return config.store_env() or ""
    if isinstance(store, (str, os.PathLike)):
        return os.fspath(store)
    root = getattr(store, "root", None)
    if root is not None:
        return os.fspath(root)
    raise TypeError(
        "the serve pool shares the store across worker processes, so "
        "store= must be a directory path (or a DiskStore), "
        f"not {type(store).__name__}")
