"""In-process artifact store: the Store protocol without a filesystem.

``MemoryStore`` holds serialized artifact blobs in an LRU-ordered dict
and decodes through the same :func:`~repro.core.compiled.from_artifact`
path as :class:`~repro.store.disk.DiskStore`, so every integrity,
version, and tenant check is exercised even in tests that never touch
disk.  It does *not* survive the process — it exists as the protocol's
reference implementation and as a deterministic double in unit tests.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.core.compiled import ArtifactError, artifact_meta, from_artifact
from repro.store.base import (ArtifactKey, EvictionReceipt, StoreError,
                              StoreStats, TenantIsolationError)


class MemoryStore:
    """Per-tenant, LRU-bounded, in-memory artifact store."""

    def __init__(self, max_bytes: Optional[int] = None,
                 sanitizer=None) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None)")
        self.max_bytes = max_bytes
        self.stats = StoreStats()
        self.receipts: List[EvictionReceipt] = []
        self._blobs: "OrderedDict[Tuple[str, Tuple], bytes]" = OrderedDict()
        self._lock = threading.Lock()
        if sanitizer is not None:
            self._lock = sanitizer.wrap_lock(self._lock, "MemoryStore._lock")

    # ------------------------------------------------------------------
    def get(self, tenant_id: str, key: ArtifactKey):
        with self._lock:
            blob = self._blobs.get((tenant_id, key.as_tuple()))
            if blob is None:
                self.stats.misses += 1
                return None
            self._blobs.move_to_end((tenant_id, key.as_tuple()))
        try:
            compiled = from_artifact(
                blob, expected_digest=key.recording_digest,
                expected_tenant=tenant_id)
        except ArtifactError:
            with self._lock:
                self._blobs.pop((tenant_id, key.as_tuple()), None)
                self.stats.corrupt_rejected += 1
                self.stats.misses += 1
            return None
        with self._lock:
            self.stats.hits += 1
        return compiled

    def put(self, tenant_id: str, key: ArtifactKey,
            blob: bytes) -> List[EvictionReceipt]:
        _check_blob_identity(tenant_id, key, blob)
        receipts: List[EvictionReceipt] = []
        with self._lock:
            self._blobs[(tenant_id, key.as_tuple())] = bytes(blob)
            self._blobs.move_to_end((tenant_id, key.as_tuple()))
            self.stats.publishes += 1
            self.stats.bytes_published += len(blob)
            while self.max_bytes is not None and \
                    self._nbytes_locked() > self.max_bytes and \
                    len(self._blobs) > 1:
                (victim_tenant, victim_key), victim = \
                    self._blobs.popitem(last=False)
                receipt = EvictionReceipt.now(
                    victim_tenant, victim_key[0], len(victim), "size")
                receipts.append(receipt)
                self.receipts.append(receipt)
                self.stats.evictions += 1
                self.stats.bytes_evicted += len(victim)
        return receipts

    # ------------------------------------------------------------------
    def _nbytes_locked(self) -> int:
        return sum(len(blob) for blob in self._blobs.values())

    def nbytes(self) -> int:
        with self._lock:
            return self._nbytes_locked()

    def __len__(self) -> int:
        with self._lock:
            return len(self._blobs)

    def entries(self) -> List[dict]:
        """Per-entry metadata rows (the ``store ls`` shape)."""
        with self._lock:
            items = list(self._blobs.items())
        rows = []
        for (tenant_id, key_tuple), blob in items:
            meta = artifact_meta(blob)
            rows.append({
                "tenant_id": tenant_id,
                "recording_digest": key_tuple[0],
                "compiler_version": key_tuple[1],
                "schema_version": key_tuple[2],
                "workload": meta.get("workload", ""),
                "nbytes": len(blob),
            })
        return rows

    def evict_tenant(self, tenant_id: str) -> List[EvictionReceipt]:
        receipts: List[EvictionReceipt] = []
        with self._lock:
            victims = [k for k in self._blobs if k[0] == tenant_id]
            for victim in victims:
                blob = self._blobs.pop(victim)
                receipt = EvictionReceipt.now(
                    tenant_id, victim[1][0], len(blob), "tenant")
                receipts.append(receipt)
                self.receipts.append(receipt)
                self.stats.evictions += 1
                self.stats.bytes_evicted += len(blob)
        return receipts

    def audit_isolation(self) -> int:
        """Every blob's embedded tenant must match its bucket (§7.1)."""
        with self._lock:
            items = list(self._blobs.items())
        for (tenant_id, key_tuple), blob in items:
            meta = artifact_meta(blob)
            if meta.get("tenant_id") != tenant_id:
                raise TenantIsolationError(
                    f"store bucket for {tenant_id!r} holds an artifact "
                    f"published by {meta.get('tenant_id')!r}")
        return len(items)


def _check_blob_identity(tenant_id: str, key: ArtifactKey,
                         blob: bytes) -> None:
    """Refuse to file a blob whose embedded identity contradicts the
    (tenant, key) it is being published under."""
    try:
        meta = artifact_meta(blob)
    except ArtifactError as exc:
        raise StoreError(f"refusing to publish unreadable artifact: {exc}")
    if meta.get("tenant_id") != tenant_id:
        raise TenantIsolationError(
            f"artifact published by {meta.get('tenant_id')!r} cannot be "
            f"filed under tenant {tenant_id!r}")
    if meta.get("recording_digest") != key.recording_digest:
        raise StoreError(
            f"artifact is for recording {meta.get('recording_digest')!r}, "
            f"not {key.recording_digest!r}")
