"""On-disk content-addressed artifact store with memmap loads.

Layout::

    <root>/
      store_stats.json                  # cross-process counters (best effort)
      <sha256(tenant_id)[:16]>/         # per-tenant bucket (§7.1)
        <recording_digest>-c<compiler>-s<schema>.grta

Properties:

* **Atomic publish** — blobs land in a same-directory temp file and
  ``os.replace`` onto the final name, so readers (including other
  processes, e.g. shard-pool workers) only ever see complete artifacts;
  two racing publishers of one key converge on identical content.
* **Zero-copy open** — ``get`` hands the path to
  :func:`~repro.core.compiled.from_artifact`, which ``np.memmap``s the
  file and builds read-only views; integrity (meta crc32 + payload
  sha256) and identity (digest, tenant, versions) are re-checked on
  every open, and a failing artifact is dropped and reported as a miss,
  never served.
* **LRU / size-bounded eviction** — every hit touches the file mtime;
  when ``max_bytes`` is set, publishes evict least-recently-used
  artifacts (never the one just published) and emit
  :class:`~repro.store.base.EvictionReceipt`\\ s.
* **Per-tenant namespacing** — a lookup only consults the calling
  tenant's bucket, and the artifact's embedded tenant is re-checked on
  open: a foreign artifact smuggled into a bucket raises
  :class:`~repro.store.base.TenantIsolationError`.

The ``store_stats.json`` sidecar accumulates hit/miss/publish/evict
counters across processes via read-increment-replace; concurrent
writers may lose increments (documented best effort — the counters feed
reports, not control flow).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from pathlib import Path
from typing import List, Optional, Tuple

from repro.core.compiled import (ARTIFACT_VERSION, COMPILER_VERSION,
                                 ArtifactError, artifact_meta, from_artifact)
from repro.store.base import (ArtifactKey, EvictionReceipt, StoreError,
                              StoreStats, TenantIsolationError)

_STATS_FILE = "store_stats.json"
_SUFFIX = ".grta"


def tenant_bucket(tenant_id: str) -> str:
    """Directory name for a tenant: a hash, so hostile tenant ids cannot
    traverse out of the root and bucket names leak no tenant names."""
    return hashlib.sha256(tenant_id.encode()).hexdigest()[:16]


def _parse_filename(name: str) -> Optional[Tuple[str, int, int]]:
    """(digest, compiler_version, schema_version) from an artifact
    filename, or None if it doesn't match the naming scheme."""
    if not name.endswith(_SUFFIX):
        return None
    stem = name[:-len(_SUFFIX)]
    try:
        digest, cpart, spart = stem.rsplit("-", 2)
        if not (cpart.startswith("c") and spart.startswith("s")):
            return None
        return digest, int(cpart[1:]), int(spart[1:])
    except ValueError:
        return None


class DiskStore:
    """Filesystem-backed artifact store (see module docstring)."""

    def __init__(self, root, max_bytes: Optional[int] = None,
                 sanitizer=None, tracer=None) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None)")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.tracer = tracer
        self.sanitizer = sanitizer
        self.stats = StoreStats()
        self.receipts: List[EvictionReceipt] = []
        self._lock = threading.Lock()
        if sanitizer is not None:
            self._lock = sanitizer.wrap_lock(self._lock, "DiskStore._lock")

    def __repr__(self) -> str:
        return f"DiskStore({str(self.root)!r}, max_bytes={self.max_bytes})"

    # ------------------------------------------------------------------
    def _note(self, write: bool) -> None:
        if self.sanitizer is not None:
            self.sanitizer.note("DiskStore.files", write)

    def _event(self, name: str, **args) -> None:
        if self.tracer is not None:
            self.tracer.event(name, cat="store", args=args or None)

    def _path_for(self, tenant_id: str, key: ArtifactKey) -> Path:
        return self.root / tenant_bucket(tenant_id) / key.filename()

    # ------------------------------------------------------------------
    def get(self, tenant_id: str, key: ArtifactKey):
        path = self._path_for(tenant_id, key)
        with self._lock:
            self._note(write=False)
            exists = path.exists()
        if not exists:
            with self._lock:
                self.stats.misses += 1
            self._persist({"misses": 1})
            self._event("store-miss", tenant=tenant_id,
                        digest=key.recording_digest[:12])
            return None
        try:
            compiled = from_artifact(
                path, expected_digest=key.recording_digest,
                expected_tenant=tenant_id)
        except ArtifactError:
            # Corrupt, truncated, or stale-version: drop it so the next
            # miss republishes a good copy — never serve it.
            with self._lock:
                self._note(write=True)
                try:
                    nbytes = path.stat().st_size
                    path.unlink()
                except OSError:
                    nbytes = 0
                self.stats.corrupt_rejected += 1
                self.stats.misses += 1
                receipt = EvictionReceipt.now(
                    tenant_id, key.recording_digest, nbytes, "corrupt")
                self.receipts.append(receipt)
            self._persist({"corrupt_rejected": 1, "misses": 1})
            self._event("store-corrupt", tenant=tenant_id,
                        digest=key.recording_digest[:12])
            return None
        try:
            os.utime(path)                      # LRU touch
        except OSError:
            pass
        with self._lock:
            self.stats.hits += 1
        self._persist({"hits": 1})
        self._event("store-hit", tenant=tenant_id,
                    digest=key.recording_digest[:12])
        return compiled

    def put(self, tenant_id: str, key: ArtifactKey,
            blob: bytes) -> List[EvictionReceipt]:
        meta = self._check_identity(tenant_id, key, blob)
        bucket = self.root / tenant_bucket(tenant_id)
        final = bucket / key.filename()
        try:
            bucket.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=bucket, prefix=".publish-")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                with self._lock:
                    self._note(write=True)
                    os.replace(tmp, final)      # atomic: readers never
            finally:                            # see a partial artifact
                if os.path.exists(tmp):
                    os.unlink(tmp)
        except OSError as exc:
            raise StoreError(f"publish failed for {final}: {exc}") from exc
        with self._lock:
            self.stats.publishes += 1
            self.stats.bytes_published += len(blob)
        self._persist({"publishes": 1, "bytes_published": len(blob)})
        self._event("store-publish", tenant=tenant_id,
                    digest=key.recording_digest[:12], nbytes=len(blob),
                    workload=meta.get("workload", ""))
        return self._enforce_budget(protect=final)

    # ------------------------------------------------------------------
    def _check_identity(self, tenant_id: str, key: ArtifactKey,
                        blob: bytes) -> dict:
        try:
            meta = artifact_meta(blob)
        except ArtifactError as exc:
            raise StoreError(
                f"refusing to publish unreadable artifact: {exc}")
        if meta.get("tenant_id") != tenant_id:
            raise TenantIsolationError(
                f"artifact published by {meta.get('tenant_id')!r} cannot "
                f"be filed under tenant {tenant_id!r}")
        if meta.get("recording_digest") != key.recording_digest:
            raise StoreError(
                f"artifact is for recording "
                f"{meta.get('recording_digest')!r}, "
                f"not {key.recording_digest!r}")
        return meta

    def _artifact_files(self) -> List[Path]:
        files: List[Path] = []
        if not self.root.is_dir():
            # The root may vanish out from under us (temp dirs in
            # benchmarks, an operator rm -rf): an empty store, not a
            # crash.
            return files
        for bucket in self.root.iterdir():
            if bucket.is_dir():
                files.extend(p for p in bucket.iterdir()
                             if p.name.endswith(_SUFFIX))
        return files

    def _enforce_budget(self, protect: Optional[Path] = None,
                        max_bytes: Optional[int] = None
                        ) -> List[EvictionReceipt]:
        budget = self.max_bytes if max_bytes is None else max_bytes
        if budget is None:
            return []
        receipts: List[EvictionReceipt] = []
        with self._lock:
            self._note(write=True)
            entries = []
            for path in self._artifact_files():
                try:
                    stat = path.stat()
                except OSError:
                    continue
                entries.append((stat.st_mtime, stat.st_size, path))
            entries.sort()                      # oldest mtime first
            total = sum(size for _, size, _ in entries)
            for _, size, path in entries:
                if total <= budget:
                    break
                if protect is not None and path == protect:
                    continue
                tenant, digest = self._identity_of(path)
                try:
                    path.unlink()
                except OSError:
                    continue
                total -= size
                receipt = EvictionReceipt.now(tenant, digest, size, "size")
                receipts.append(receipt)
                self.receipts.append(receipt)
                self.stats.evictions += 1
                self.stats.bytes_evicted += size
        if receipts:
            self._persist({
                "evictions": len(receipts),
                "bytes_evicted": sum(r.nbytes for r in receipts)})
            for receipt in receipts:
                self._event("store-evict", tenant=receipt.tenant_id,
                            digest=receipt.recording_digest[:12],
                            nbytes=receipt.nbytes)
        return receipts

    @staticmethod
    def _identity_of(path: Path) -> Tuple[str, str]:
        """(tenant_id, digest) of an artifact file; tolerates corruption
        by falling back to the filename digest."""
        parsed = _parse_filename(path.name)
        digest = parsed[0] if parsed else path.stem
        try:
            meta = artifact_meta(path)
            return meta.get("tenant_id", ""), meta.get(
                "recording_digest", digest)
        except ArtifactError:
            return "", digest

    # ------------------------------------------------------------------
    # maintenance surface (the `repro store` CLI)
    def entries(self) -> List[dict]:
        rows: List[dict] = []
        with self._lock:
            self._note(write=False)
            files = self._artifact_files()
        for path in sorted(files):
            parsed = _parse_filename(path.name)
            if parsed is None:
                continue
            digest, compiler_version, schema_version = parsed
            row = {
                "tenant_id": "",
                "recording_digest": digest,
                "compiler_version": compiler_version,
                "schema_version": schema_version,
                "workload": "",
                "nbytes": 0,
                "mtime": 0.0,
                "path": str(path),
            }
            try:
                stat = path.stat()
                row["nbytes"] = stat.st_size
                row["mtime"] = stat.st_mtime
                meta = artifact_meta(path)
                row["tenant_id"] = meta.get("tenant_id", "")
                row["workload"] = meta.get("workload", "")
            except (OSError, ArtifactError):
                row["workload"] = "<unreadable>"
            rows.append(row)
        return rows

    def nbytes(self) -> int:
        with self._lock:
            self._note(write=False)
            total = 0
            for path in self._artifact_files():
                try:
                    total += path.stat().st_size
                except OSError:
                    pass
            return total

    def __len__(self) -> int:
        with self._lock:
            self._note(write=False)
            return len(self._artifact_files())

    def gc(self, max_bytes: Optional[int] = None) -> List[EvictionReceipt]:
        """Evict LRU entries down to the size budget (the configured
        ``max_bytes`` unless overridden); also sweeps artifacts whose
        key versions no longer match this build (stale layouts that no
        current reader can open)."""
        receipts: List[EvictionReceipt] = []
        with self._lock:
            self._note(write=True)
            for path in self._artifact_files():
                parsed = _parse_filename(path.name)
                if parsed is not None and \
                        (parsed[1], parsed[2]) == (COMPILER_VERSION,
                                                   ARTIFACT_VERSION):
                    continue
                tenant, digest = self._identity_of(path)
                try:
                    size = path.stat().st_size
                    path.unlink()
                except OSError:
                    continue
                receipt = EvictionReceipt.now(tenant, digest, size, "stale")
                receipts.append(receipt)
                self.receipts.append(receipt)
                self.stats.evictions += 1
                self.stats.bytes_evicted += size
        receipts.extend(self._enforce_budget(max_bytes=max_bytes))
        if receipts:
            self._persist({
                "evictions": sum(1 for r in receipts if r.reason == "stale"),
                "bytes_evicted": sum(r.nbytes for r in receipts
                                     if r.reason == "stale")})
        return receipts

    def verify_all(self) -> List[dict]:
        """Deep-verify every artifact (full open: crc + sha + identity).

        Returns one row per artifact with ``ok`` and any error; also
        checks that the file sits in the bucket its embedded tenant
        hashes to (the §7.1 sweep).
        """
        rows: List[dict] = []
        with self._lock:
            self._note(write=False)
            files = sorted(self._artifact_files())
        for path in files:
            row = {"path": str(path), "ok": True, "error": "",
                   "tenant_id": "", "recording_digest": ""}
            try:
                compiled = from_artifact(path)
                meta = compiled.artifact_meta or {}
                row["tenant_id"] = meta.get("tenant_id", "")
                row["recording_digest"] = meta.get("recording_digest", "")
                if tenant_bucket(meta.get("tenant_id", "")) != \
                        path.parent.name:
                    raise TenantIsolationError(
                        f"artifact for tenant {meta.get('tenant_id')!r} "
                        f"found outside its bucket")
            except (ArtifactError, TenantIsolationError) as exc:
                row["ok"] = False
                row["error"] = str(exc)
            rows.append(row)
        return rows

    def remove(self, tenant_id: str,
               recording_digest: str) -> List[EvictionReceipt]:
        """Explicitly drop a tenant's artifact(s) for one digest (any
        compiler/schema version)."""
        receipts: List[EvictionReceipt] = []
        bucket = self.root / tenant_bucket(tenant_id)
        with self._lock:
            self._note(write=True)
            if bucket.is_dir():
                for path in bucket.iterdir():
                    parsed = _parse_filename(path.name)
                    if parsed is None or parsed[0] != recording_digest:
                        continue
                    try:
                        size = path.stat().st_size
                        path.unlink()
                    except OSError:
                        continue
                    receipt = EvictionReceipt.now(
                        tenant_id, recording_digest, size, "explicit")
                    receipts.append(receipt)
                    self.receipts.append(receipt)
                    self.stats.evictions += 1
                    self.stats.bytes_evicted += size
        return receipts

    def evict_tenant(self, tenant_id: str) -> List[EvictionReceipt]:
        """Drop the tenant's whole bucket (§7.1 off-boarding)."""
        receipts: List[EvictionReceipt] = []
        bucket = self.root / tenant_bucket(tenant_id)
        with self._lock:
            self._note(write=True)
            if bucket.is_dir():
                for path in list(bucket.iterdir()):
                    parsed = _parse_filename(path.name)
                    if parsed is None:
                        continue
                    try:
                        size = path.stat().st_size
                        path.unlink()
                    except OSError:
                        continue
                    receipt = EvictionReceipt.now(
                        tenant_id, parsed[0], size, "tenant")
                    receipts.append(receipt)
                    self.receipts.append(receipt)
                    self.stats.evictions += 1
                    self.stats.bytes_evicted += size
                try:
                    bucket.rmdir()
                except OSError:
                    pass
        return receipts

    def audit_isolation(self) -> int:
        """Every artifact's embedded tenant must hash to its bucket."""
        checked = 0
        with self._lock:
            self._note(write=False)
            files = self._artifact_files()
        for path in files:
            try:
                meta = artifact_meta(path)
            except ArtifactError:
                continue                        # unreadable: get() rejects it
            if tenant_bucket(meta.get("tenant_id", "")) != path.parent.name:
                raise TenantIsolationError(
                    f"artifact for tenant {meta.get('tenant_id')!r} found "
                    f"in bucket {path.parent.name!r}")
            checked += 1
        return checked

    # ------------------------------------------------------------------
    # cross-process counters (best effort)
    def _persist(self, deltas: dict) -> None:
        path = self.root / _STATS_FILE
        with self._lock:
            try:
                totals = json.loads(path.read_text())
            except (OSError, ValueError):
                totals = {}
            for field, delta in deltas.items():
                totals[field] = int(totals.get(field, 0)) + int(delta)
            try:
                fd, tmp = tempfile.mkstemp(dir=self.root, prefix=".stats-")
                with os.fdopen(fd, "w") as handle:
                    json.dump(totals, handle)
                os.replace(tmp, path)
            except OSError:
                pass

    def persisted_stats(self) -> dict:
        """Cumulative counters across every process that used this root."""
        try:
            return json.loads((self.root / _STATS_FILE).read_text())
        except (OSError, ValueError):
            return {}
