"""StatsProtocol + a counter/gauge/histogram registry.

Before this layer existed the reproduction carried eight ad-hoc
``*Stats`` dataclasses (record, replay, memsync, speculation, network,
channel, pool, registry) with incompatible shapes: some had bespoke
``merge`` methods, some only ``dataclasses.asdict``, none were
versioned.  They now share :class:`StatsBase`, which supplies

* ``as_dict()`` — plain-JSON dict stamped with a schema-versioned name
  (``"repro.replay/1"``), nested stats recursing;
* ``from_dict()`` — the inverse, validating the schema stamp;
* ``merge(other)`` — in-place field-wise accumulation (numbers sum,
  dict-of-number values sum per key, nested stats recurse, booleans
  OR, identity fields keep ``self``'s value), returning ``self``.

:class:`MetricsRegistry` is the aggregation side: counters, gauges and
histograms keyed by name, able to :meth:`~MetricsRegistry.ingest` any
``StatsProtocol`` object by flattening its numeric leaves.
"""

from __future__ import annotations

import dataclasses
from typing import ClassVar, Dict, List, Optional, Tuple

try:  # Protocol is 3.8+; runtime_checkable lets tests use isinstance().
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - py<3.8 fallback
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


#: Version stamped into every ``as_dict()`` payload as
#: ``"<SCHEMA>/<STATS_SCHEMA_VERSION>"``.  Bump when a stats field is
#: renamed or changes meaning (adding fields is compatible).
STATS_SCHEMA_VERSION = 1


@runtime_checkable
class StatsProtocol(Protocol):
    """What every stats object guarantees."""

    SCHEMA: ClassVar[str]

    def as_dict(self) -> Dict[str, object]: ...

    def merge(self, other): ...


class StatsBase:
    """Mixin for the ``*Stats`` dataclasses implementing StatsProtocol.

    Subclasses set ``SCHEMA`` (``"repro.<name>"``), optionally
    ``_NESTED`` mapping field name -> nested stats class (needed for
    ``from_dict`` because annotations are strings at runtime), and
    optionally ``_IDENTITY`` naming numeric fields that identify the
    run rather than measure it (``seed``) so ``merge`` keeps ``self``'s
    value instead of summing.
    """

    SCHEMA: ClassVar[str] = "repro.stats"
    _NESTED: ClassVar[Dict[str, type]] = {}
    _IDENTITY: ClassVar[Tuple[str, ...]] = ()

    @classmethod
    def schema_name(cls) -> str:
        return f"{cls.SCHEMA}/{STATS_SCHEMA_VERSION}"

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"schema": self.schema_name()}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if isinstance(value, StatsBase):
                value = value.as_dict()
            elif isinstance(value, dict):
                value = dict(value)
            elif isinstance(value, (list, tuple)):
                value = list(value)
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Optional[Dict[str, object]]):
        if data is None:
            return None
        stamp = data.get("schema")
        if stamp is not None and stamp != cls.schema_name():
            raise ValueError(
                f"stats schema mismatch: payload is {stamp!r}, "
                f"decoder expects {cls.schema_name()!r}")
        names = {f.name for f in dataclasses.fields(cls)}
        kwargs = {}
        for key, value in data.items():
            if key == "schema" or key not in names:
                continue
            nested = cls._NESTED.get(key)
            if nested is not None and isinstance(value, dict):
                value = nested.from_dict(value)
            kwargs[key] = value
        return cls(**kwargs)  # type: ignore[call-arg]

    def merge(self, other):
        """Accumulate ``other`` into ``self`` field-wise; returns self."""
        if other is None:
            return self
        for f in dataclasses.fields(self):
            mine = getattr(self, f.name)
            theirs = getattr(other, f.name, None)
            if theirs is None or f.name in self._IDENTITY:
                continue
            if isinstance(mine, bool) or isinstance(theirs, bool):
                setattr(self, f.name, bool(mine) or bool(theirs))
            elif isinstance(mine, (int, float)):
                setattr(self, f.name, mine + theirs)
            elif isinstance(mine, StatsBase):
                mine.merge(theirs)
            elif isinstance(mine, dict):
                for key, value in theirs.items():
                    if isinstance(value, bool):
                        mine[key] = bool(mine.get(key)) or value
                    elif isinstance(value, (int, float)):
                        mine[key] = mine.get(key, 0) + value
                    else:
                        mine.setdefault(key, value)
            elif mine is None:
                setattr(self, f.name, theirs)
            # strings and other scalars identify the run: keep self's.
        return self


# ---------------------------------------------------------------------------
# registry


class Counter:
    """Monotonic sum."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount


class Gauge:
    """Last-written value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Sample distribution with percentile summaries.

    Keeps raw samples up to ``max_samples`` (reservoir-free truncation:
    summary moments stay exact, percentiles reflect the newest window).
    """

    __slots__ = ("name", "count", "total", "min", "max",
                 "max_samples", "_samples")

    def __init__(self, name: str, max_samples: int = 4096) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.max_samples = max_samples
        self._samples: List[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if len(self._samples) >= self.max_samples:
            del self._samples[0]
        self._samples.append(value)

    def percentile(self, p: float) -> float:
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        idx = min(len(ordered) - 1, max(0, int(round(
            (p / 100.0) * (len(ordered) - 1)))))
        return ordered[idx]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min or 0.0,
            "max": self.max or 0.0,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Named counters/gauges/histograms, exportable as one dict."""

    SCHEMA = "repro.metrics"

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str, max_samples: int = 4096) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name, max_samples)
        return metric

    def ingest(self, stats, prefix: Optional[str] = None) -> None:
        """Flatten any StatsProtocol object's numeric leaves into
        counters named ``<schema-name>.<field>`` (or ``<prefix>.<field>``)."""
        payload = stats.as_dict()
        base = prefix if prefix is not None else str(
            payload.get("schema", "stats")).split("/")[0]
        self._ingest_dict(payload, base)

    def _ingest_dict(self, payload: Dict[str, object], base: str) -> None:
        for key, value in payload.items():
            if key == "schema":
                continue
            name = f"{base}.{key}"
            if isinstance(value, bool):
                self.counter(name).inc(1.0 if value else 0.0)
            elif isinstance(value, (int, float)):
                self.counter(name).inc(max(0.0, float(value)))
            elif isinstance(value, dict):
                inner = value
                if "schema" in inner:
                    self._ingest_dict(inner, name)
                else:
                    for k, v in inner.items():
                        if isinstance(v, (int, float)) and not isinstance(v, bool):
                            self.counter(f"{name}.{k}").inc(max(0.0, float(v)))

    def as_dict(self) -> Dict[str, object]:
        return {
            "schema": f"{self.SCHEMA}/{STATS_SCHEMA_VERSION}",
            "counters": {n: c.value
                         for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {n: h.summary()
                           for n, h in sorted(self._histograms.items())},
        }

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        for name, counter in other._counters.items():
            self.counter(name).value += counter.value
        for name, gauge in other._gauges.items():
            self.gauge(name).set(gauge.value)
        for name, hist in other._histograms.items():
            mine = self.histogram(name, hist.max_samples)
            for sample in hist._samples:
                mine.observe(sample)
            # truncated samples still count toward the moments
            extra = hist.count - len(hist._samples)
            if extra > 0:
                mine.count += extra
                mine.total += hist.total - sum(hist._samples)
        return self
