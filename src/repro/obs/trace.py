# repro-check: module-allow[determinism] -- wall-clock timestamps only
# annotate trace spans for §8 reporting; they never feed the virtual
# clock, a recording, or any replay decision.
"""Span/event tracer keyed to both the virtual clock and the wall clock.

Every record carries two timelines: the *virtual* seconds of the
simulation clock (the paper's reported axis — §4/§5 phase costs are
virtual-time costs) and real ``time.perf_counter()`` seconds (how long
the simulator itself spent, the axis ``repro perf`` gates on).  Chrome
trace export uses virtual time for ``ts``/``dur`` and stashes the wall
cost in ``args``.

Two span APIs cover the two call-site shapes in the codebase:

* :meth:`Tracer.span` / :meth:`Tracer.begin` + :meth:`Tracer.end` —
  stack-based, for straight-line code (record attempts, replay runs).
  Nesting depth and the parent span name are recorded so tests can
  assert phase containment without reconstructing interval trees.
* :meth:`Tracer.add_span` — retrospective, with explicit start/end
  times, for coroutine-shaped code (the fleet scheduler interleaves
  dozens of sessions; each emits its stage spans on its own ``tid``
  after the stage completes).

Hooks throughout :mod:`repro.core`, :mod:`repro.fleet` and
:mod:`repro.resilience` accept ``tracer=None`` and guard every call
with ``if tracer is not None`` — the no-trace fast path costs one
attribute test per *phase* (never per replay entry), which is below
the measurement floor of ``benchmarks/test_perf_wallclock.py``.

A bounded tracer (``Tracer(capacity=...)``) keeps the newest records in
a ring buffer and counts evictions in :attr:`Tracer.dropped`, so
always-on tracing in long fleet runs stays O(capacity).
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

_wall = time.perf_counter


class SpanRecord:
    """One completed span. ``ts``/``dur`` are virtual seconds,
    ``wall_ts``/``wall_dur`` are perf-counter seconds."""

    __slots__ = ("name", "cat", "ts", "dur", "wall_ts", "wall_dur",
                 "pid", "tid", "depth", "parent", "args")
    ph = "X"

    def __init__(self, name: str, cat: str, ts: float, dur: float,
                 wall_ts: float, wall_dur: float, pid: str, tid: str,
                 depth: int, parent: str, args: Optional[dict]) -> None:
        self.name = name
        self.cat = cat
        self.ts = ts
        self.dur = dur
        self.wall_ts = wall_ts
        self.wall_dur = wall_dur
        self.pid = pid
        self.tid = tid
        self.depth = depth
        self.parent = parent
        self.args = args

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SpanRecord({self.name!r}, cat={self.cat!r}, "
                f"ts={self.ts:.6f}, dur={self.dur:.6f}, depth={self.depth})")


class EventRecord:
    """One instant event (misprediction, retry, disconnect, segment
    boundary...)."""

    __slots__ = ("name", "cat", "ts", "wall_ts", "pid", "tid", "args")
    ph = "i"

    def __init__(self, name: str, cat: str, ts: float, wall_ts: float,
                 pid: str, tid: str, args: Optional[dict]) -> None:
        self.name = name
        self.cat = cat
        self.ts = ts
        self.wall_ts = wall_ts
        self.pid = pid
        self.tid = tid
        self.args = args

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventRecord({self.name!r}, cat={self.cat!r}, ts={self.ts:.6f})"


class _OpenSpan:
    __slots__ = ("name", "cat", "ts", "wall_ts", "pid", "tid", "depth",
                 "parent", "args")

    def __init__(self, name, cat, ts, wall_ts, pid, tid, depth, parent, args):
        self.name = name
        self.cat = cat
        self.ts = ts
        self.wall_ts = wall_ts
        self.pid = pid
        self.tid = tid
        self.depth = depth
        self.parent = parent
        self.args = args


class Tracer:
    """Collects :class:`SpanRecord`/:class:`EventRecord` objects.

    ``clock`` is any object with a ``.now`` float attribute (normally a
    :class:`repro.sim.VirtualClock`); without one, virtual timestamps
    are 0 until :meth:`set_clock` attaches a clock.  ``domain`` names
    the current process row in the exported trace ("record", "replay",
    "fleet"...); :meth:`set_clock` switches both at once so one tracer
    can span a record phase and a replay phase without their virtual
    timelines colliding.
    """

    def __init__(self, clock=None, capacity: Optional[int] = None,
                 domain: str = "record") -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive (or None)")
        self.clock = clock
        self.domain = domain
        self.capacity = capacity
        self.dropped = 0
        self._records: deque = deque(maxlen=capacity)
        self._stacks: Dict[Tuple[str, str], List[_OpenSpan]] = {}

    # ------------------------------------------------------------------
    # clock / domain plumbing

    def set_clock(self, clock, domain: Optional[str] = None) -> None:
        """Attach (or switch) the virtual clock; optionally rename the
        trace domain (exported as the Chrome process row)."""
        self.clock = clock
        if domain is not None:
            self.domain = domain

    def _now(self) -> float:
        clock = self.clock
        return 0.0 if clock is None else clock.now

    # ------------------------------------------------------------------
    # stack-based spans

    def begin(self, name: str, cat: str = "", tid: str = "main",
              args: Optional[dict] = None) -> None:
        """Open a nested span on ``tid``'s stack."""
        key = (self.domain, tid)
        stack = self._stacks.setdefault(key, [])
        parent = stack[-1].name if stack else ""
        stack.append(_OpenSpan(name, cat, self._now(), _wall(), self.domain,
                               tid, len(stack), parent, args))

    def end(self, tid: str = "main",
            args: Optional[dict] = None) -> Optional[SpanRecord]:
        """Close the innermost open span on ``tid``; ``args`` merge into
        the span's args (measurements only known at close time)."""
        stack = self._stacks.get((self.domain, tid))
        if not stack:
            return None
        open_span = stack.pop()
        if args:
            merged = dict(open_span.args) if open_span.args else {}
            merged.update(args)
            open_span.args = merged
        record = SpanRecord(
            open_span.name, open_span.cat, open_span.ts,
            max(0.0, self._now() - open_span.ts),
            open_span.wall_ts, max(0.0, _wall() - open_span.wall_ts),
            open_span.pid, open_span.tid, open_span.depth,
            open_span.parent, open_span.args)
        self._append(record)
        return record

    @contextmanager
    def span(self, name: str, cat: str = "", tid: str = "main",
             args: Optional[dict] = None) -> Iterator[None]:
        self.begin(name, cat=cat, tid=tid, args=args)
        try:
            yield
        finally:
            self.end(tid=tid)

    def depth(self, tid: str = "main") -> int:
        """Current open-span nesting depth on ``tid``."""
        return len(self._stacks.get((self.domain, tid), ()))

    def unwind_to(self, depth: int, tid: str = "main") -> int:
        """Close open spans on ``tid`` until the stack is back at
        ``depth`` — used when an exception (misprediction, disconnect)
        aborts a traced phase mid-span.  Returns spans closed."""
        stack = self._stacks.get((self.domain, tid))
        closed = 0
        while stack and len(stack) > depth:
            self.end(tid=tid)
            closed += 1
        return closed

    def finish_open(self) -> int:
        """Close every still-open span (export-time safety net).
        Returns the number of spans force-closed."""
        closed = 0
        for (pid, tid), stack in list(self._stacks.items()):
            saved = self.domain
            self.domain = pid
            while stack:
                self.end(tid=tid)
                closed += 1
            self.domain = saved
        return closed

    # ------------------------------------------------------------------
    # retrospective spans + instant events

    def add_span(self, name: str, cat: str, start_s: float, end_s: float,
                 tid: str = "main", args: Optional[dict] = None,
                 wall_start: Optional[float] = None,
                 wall_end: Optional[float] = None,
                 depth: Optional[int] = None) -> SpanRecord:
        """Record a span with explicit virtual start/end times — for
        coroutine-shaped code where a stack cannot express nesting."""
        if depth is None:
            depth = len(self._stacks.get((self.domain, tid), ()))
        wall_dur = 0.0
        if wall_start is not None and wall_end is not None:
            wall_dur = max(0.0, wall_end - wall_start)
        record = SpanRecord(
            name, cat, start_s, max(0.0, end_s - start_s),
            wall_start if wall_start is not None else _wall(), wall_dur,
            self.domain, tid, depth, "", args)
        self._append(record)
        return record

    def event(self, name: str, cat: str = "", tid: str = "main",
              args: Optional[dict] = None,
              ts: Optional[float] = None) -> EventRecord:
        """Record an instant event at the current (or given) virtual time."""
        record = EventRecord(name, cat, self._now() if ts is None else ts,
                             _wall(), self.domain, tid, args)
        self._append(record)
        return record

    # ------------------------------------------------------------------
    # buffer access

    def _append(self, record) -> None:
        records = self._records
        if records.maxlen is not None and len(records) == records.maxlen:
            self.dropped += 1
        records.append(record)

    def records(self) -> list:
        """All records in completion order (oldest surviving first)."""
        return list(self._records)

    def spans(self) -> List[SpanRecord]:
        return [r for r in self._records if isinstance(r, SpanRecord)]

    def events(self) -> List[EventRecord]:
        return [r for r in self._records if isinstance(r, EventRecord)]

    def by_category(self, cat: str) -> list:
        return [r for r in self._records if r.cat == cat]

    def clear(self) -> None:
        self._records.clear()
        self._stacks.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._records)
