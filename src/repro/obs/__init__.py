"""repro.obs — unified tracing/metrics layer (§8 evaluation support).

The paper's evaluation is phase-attributed: record vs replay time,
commit/speculation/polling counts, per-link network cost.  This package
gives the reproduction one shared timeline for all of it:

* :mod:`repro.obs.trace` — a low-overhead span/event tracer keyed to
  both the virtual clock and the wall clock, with nested spans for the
  paper phases (deferral commits §4.1, speculation windows §4.2,
  polling offloads §4.3, memsync epochs §5, fleet session lifecycle)
  and a ring-buffer mode so always-on tracing stays cheap.
* :mod:`repro.obs.metrics` — the ``StatsProtocol`` shared by the eight
  ``*Stats`` dataclasses plus a counter/gauge/histogram registry.
* :mod:`repro.obs.export` — Chrome-trace JSON and JSONL emitters and a
  dependency-free schema validator used by the ``trace-smoke`` CI job.
"""

from repro.obs.trace import EventRecord, SpanRecord, Tracer
from repro.obs.metrics import (
    STATS_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    StatsBase,
    StatsProtocol,
)
from repro.obs.export import (
    to_chrome_trace,
    to_jsonl,
    trace_summary,
    validate_schema,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "Tracer",
    "SpanRecord",
    "EventRecord",
    "STATS_SCHEMA_VERSION",
    "StatsProtocol",
    "StatsBase",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "to_chrome_trace",
    "write_chrome_trace",
    "to_jsonl",
    "write_jsonl",
    "trace_summary",
    "validate_schema",
]
