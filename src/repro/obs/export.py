"""Trace exporters: Chrome-trace JSON, JSONL, and a schema validator.

Chrome-trace output follows the Trace Event Format (the JSON loaded by
``chrome://tracing`` / Perfetto): completed spans are ``ph: "X"``
events with microsecond ``ts``/``dur`` on the *virtual* timeline,
instant events are ``ph: "i"``, and ``ph: "M"`` metadata rows name the
processes (trace domains: record/replay/fleet) and threads.  The wall
cost and nesting depth of every span ride along in ``args``.

:func:`validate_schema` is a dependency-free validator for the subset
of JSON Schema the checked-in ``benchmarks/trace_schema.json`` uses
(type/required/properties/items/enum/minimum) — the ``trace-smoke`` CI
job and the trace CLI both gate on it without needing ``jsonschema``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.obs.trace import EventRecord, SpanRecord, Tracer


def _ids(tracer: Tracer) -> Tuple[Dict[str, int], Dict[Tuple[str, str], int]]:
    """Stable string->int maps for Chrome pids/tids, in first-seen order."""
    pids: Dict[str, int] = {}
    tids: Dict[Tuple[str, str], int] = {}
    for record in tracer.records():
        if record.pid not in pids:
            pids[record.pid] = len(pids) + 1
        key = (record.pid, record.tid)
        if key not in tids:
            tids[key] = sum(1 for k in tids if k[0] == record.pid) + 1
    return pids, tids


def to_chrome_trace(tracer: Tracer) -> dict:
    """Render the tracer's buffer as a Chrome-trace document."""
    pids, tids = _ids(tracer)
    events: List[dict] = []
    for name, pid in pids.items():
        events.append({"name": "process_name", "ph": "M", "ts": 0,
                       "pid": pid, "tid": 0, "args": {"name": name}})
    for (pname, tname), tid in tids.items():
        events.append({"name": "thread_name", "ph": "M", "ts": 0,
                       "pid": pids[pname], "tid": tid,
                       "args": {"name": tname}})
    for record in tracer.records():
        pid = pids[record.pid]
        tid = tids[(record.pid, record.tid)]
        if isinstance(record, SpanRecord):
            args = dict(record.args) if record.args else {}
            args["wall_ms"] = round(record.wall_dur * 1e3, 6)
            args["depth"] = record.depth
            if record.parent:
                args["parent"] = record.parent
            events.append({
                "name": record.name, "cat": record.cat or "repro",
                "ph": "X", "ts": round(record.ts * 1e6, 3),
                "dur": round(record.dur * 1e6, 3),
                "pid": pid, "tid": tid, "args": args,
            })
        elif isinstance(record, EventRecord):
            events.append({
                "name": record.name, "cat": record.cat or "repro",
                "ph": "i", "s": "t", "ts": round(record.ts * 1e6, 3),
                "pid": pid, "tid": tid,
                "args": dict(record.args) if record.args else {},
            })
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": {"dropped_records": tracer.dropped}}


def write_chrome_trace(tracer: Tracer, path: str) -> str:
    doc = to_chrome_trace(tracer)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    return path


def to_jsonl(tracer: Tracer) -> str:
    """One JSON object per record: ``{"type": "span"|"event", ...}``."""
    lines = []
    for record in tracer.records():
        if isinstance(record, SpanRecord):
            lines.append(json.dumps({
                "type": "span", "name": record.name, "cat": record.cat,
                "ts": record.ts, "dur": record.dur,
                "wall_ts": record.wall_ts, "wall_dur": record.wall_dur,
                "pid": record.pid, "tid": record.tid,
                "depth": record.depth, "parent": record.parent,
                "args": record.args or {},
            }, sort_keys=True))
        else:
            lines.append(json.dumps({
                "type": "event", "name": record.name, "cat": record.cat,
                "ts": record.ts, "wall_ts": record.wall_ts,
                "pid": record.pid, "tid": record.tid,
                "args": record.args or {},
            }, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(tracer: Tracer, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_jsonl(tracer))


def trace_summary(tracer: Tracer) -> dict:
    """Span/event counts per category — the trace CLI's text report."""
    categories: Dict[str, int] = {}
    virtual_s = 0.0
    for record in tracer.records():
        categories[record.cat or "repro"] = (
            categories.get(record.cat or "repro", 0) + 1)
        if isinstance(record, SpanRecord):
            virtual_s = max(virtual_s, record.ts + record.dur)
    return {
        "spans": len(tracer.spans()),
        "events": len(tracer.events()),
        "dropped": tracer.dropped,
        "categories": dict(sorted(categories.items())),
        "virtual_end_s": virtual_s,
    }


# ---------------------------------------------------------------------------
# minimal JSON-schema validation (no external deps)

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "integer": int,
    "number": (int, float),
}


def validate_schema(doc, schema: dict, path: str = "$",
                    errors: Optional[List[str]] = None) -> List[str]:
    """Validate ``doc`` against the JSON-Schema subset used by
    ``benchmarks/trace_schema.json``; returns a list of error strings
    (empty = valid)."""
    if errors is None:
        errors = []
    expected = schema.get("type")
    if expected is not None:
        py_type = _TYPES.get(expected)
        if py_type is None:
            errors.append(f"{path}: unsupported schema type {expected!r}")
            return errors
        ok = isinstance(doc, py_type)
        # bool is an int subclass; keep integer/number strict
        if ok and expected in ("integer", "number") and isinstance(doc, bool):
            ok = False
        if not ok:
            errors.append(f"{path}: expected {expected}, "
                          f"got {type(doc).__name__}")
            return errors
    if "enum" in schema and doc not in schema["enum"]:
        errors.append(f"{path}: {doc!r} not in {schema['enum']!r}")
    if "minimum" in schema and isinstance(doc, (int, float)) \
            and not isinstance(doc, bool) and doc < schema["minimum"]:
        errors.append(f"{path}: {doc!r} < minimum {schema['minimum']!r}")
    if isinstance(doc, dict):
        for key in schema.get("required", ()):
            if key not in doc:
                errors.append(f"{path}: missing required key {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in doc:
                validate_schema(doc[key], sub, f"{path}.{key}", errors)
    if isinstance(doc, list) and "items" in schema:
        for i, item in enumerate(doc):
            validate_schema(item, schema["items"], f"{path}[{i}]", errors)
    return errors
