"""Command-line interface: record, replay, inspect, diff, fleet, check.

Examples::

    python -m repro skus --family mali-bifrost
    python -m repro record --workload mnist --out mnist.grt
    python -m repro replay --recording mnist.grt --runs 3
    python -m repro inspect mnist.grt
    python -m repro diff a.grt b.grt
    python -m repro fleet --clients 200 --seed 7
    python -m repro check --format json
    python -m repro perf --quick --baseline benchmarks/perf_baseline.json

``record`` writes three artifacts: ``<out>`` (the signed recording),
``<out>.key`` (the cloud service's verification key, which a real
deployment would pin inside the TEE at provisioning), and
``<out>.stats.json`` (the run's statistics).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import List, Optional

import numpy as np

from repro.analysis.report import (
    chaos_summary_tables,
    check_summary_tables,
    fleet_summary_tables,
    json_envelope,
    serve_summary_tables,
    store_summary_tables,
)
from repro.obs import (
    Tracer,
    trace_summary,
    validate_schema,
    write_chrome_trace,
)
from repro.analysis.tracediff import diff_recordings
from repro.core.recorder import (
    NAIVE,
    OURS_M,
    OURS_MD,
    OURS_MDS,
    RecordSession,
)
from repro.core.recording import Recording
from repro.core.replayer import Replayer
from repro.core.speculation import CommitHistory
from repro.core.testbed import ClientDevice
from repro.fleet import FleetSimulation, WorkloadGenerator
from repro.hw.sku import SKU_DATABASE, find_sku, HIKEY960_G71
from repro.ml.models import EXTRA_WORKLOADS, PAPER_WORKLOADS, build_model
from repro.ml.runner import generate_weights
from repro.sim.network import CELLULAR, WIFI
from repro.tee.crypto import SigningKey

RECORDERS = {c.name: c for c in (NAIVE, OURS_M, OURS_MD, OURS_MDS)}
LINKS = {"wifi": WIFI, "cellular": CELLULAR}


def _make_trace(args) -> Optional[Tracer]:
    """A tracer when ``--trace PATH`` was given, else None."""
    return Tracer() if getattr(args, "trace", None) else None


def _write_trace(args, tracer: Optional[Tracer]) -> None:
    if tracer is None:
        return
    tracer.finish_open()
    write_chrome_trace(tracer, args.trace)
    if args.fmt != "json":
        print(f"wrote trace {args.trace} "
              f"({len(tracer)} records, {tracer.dropped} dropped)")


def cmd_skus(args) -> int:
    rows = [s for s in SKU_DATABASE
            if args.family is None or s.family == args.family]
    if args.fmt == "json":
        print(json_envelope("skus", [
            {"name": s.name, "family": s.family, "year": s.year,
             "cores": s.core_count, "clock_mhz": s.clock_mhz,
             "gflops": s.gflops}
            for s in sorted(rows, key=lambda s: (s.year, s.name))]))
        return 0
    print(f"{'name':22s} {'family':14s} {'year':4s} {'cores':5s} "
          f"{'MHz':5s} {'GFLOPS':7s}")
    for sku in sorted(rows, key=lambda s: (s.year, s.name)):
        print(f"{sku.name:22s} {sku.family:14s} {sku.year:4d} "
              f"{sku.core_count:5d} {sku.clock_mhz:5d} {sku.gflops:7.1f}")
    print(f"\n{len(rows)} SKU(s)")
    return 0


def cmd_workloads(args) -> int:
    graphs = [(name, build_model(name))
              for name in [*PAPER_WORKLOADS, *EXTRA_WORKLOADS]]
    if args.fmt == "json":
        print(json_envelope("workloads", [
            {"name": name, "input_shape": list(g.input_shape),
             "params": g.total_params(), "gflops": g.total_flops() / 1e9,
             "layers": len(g.nodes)} for name, g in graphs]))
        return 0
    print(f"{'name':12s} {'input':14s} {'params':>12s} {'GFLOPs':>8s} "
          f"{'layers':>6s}")
    for name, g in graphs:
        print(f"{name:12s} {str(g.input_shape):14s} "
              f"{g.total_params():>12,} {g.total_flops()/1e9:>8.2f} "
              f"{len(g.nodes):>6d}")
    return 0


def cmd_record(args) -> int:
    config = RECORDERS[args.recorder]
    sku = find_sku(args.sku) if args.sku else HIKEY960_G71
    link = LINKS[args.link]
    history = CommitHistory(config.spec_window)
    tracer = _make_trace(args)
    session = None
    result = None
    runs = max(1, args.warm + 1) if config.speculate else 1
    for i in range(runs):
        session = RecordSession(args.workload, config=config, sku=sku,
                                link_profile=link, seed=args.seed,
                                history=history,
                                tracer=tracer if i == runs - 1 else None)
        result = session.run()
        if i < runs - 1 and args.fmt != "json":
            print(f"  warm-up run {i + 1}/{runs - 1}: "
                  f"{result.stats.recording_delay_s:.1f} s")
    blob = result.recording.to_bytes()
    with open(args.out, "wb") as fh:
        fh.write(blob)
    with open(args.out + ".key", "w") as fh:
        fh.write(session.service.recording_key.secret.hex())
    stats = dataclasses.asdict(result.stats)
    with open(args.out + ".stats.json", "w") as fh:
        json.dump(stats, fh, indent=2, default=str)
    _write_trace(args, tracer)
    s = result.stats
    if args.fmt == "json":
        print(json_envelope("record", {
            "workload": args.workload, "recorder": config.name,
            "sku": sku.name, "link": link.name, "seed": args.seed,
            "recording_bytes": len(blob), "out": args.out,
            "stats": stats,
        }))
        return 0
    print(f"recorded {args.workload} on {sku.name} via {config.name} "
          f"({link.name}, seed {args.seed}):")
    print(f"  delay {s.recording_delay_s:.1f} s | RTTs {s.blocking_rtts} "
          f"| jobs {s.gpu_jobs} | energy {s.client_energy_j:.1f} J")
    print(f"  wrote {args.out} ({len(blob)} bytes), .key, .stats.json")
    return 0


def _load_recording(path: str, verify: bool) -> Recording:
    with open(path, "rb") as fh:
        blob = fh.read()
    key = None
    if verify:
        with open(path + ".key") as fh:
            secret = bytes.fromhex(fh.read().strip())
        key = SigningKey("grt-recording-service", secret)
    return Recording.from_bytes(blob, verify_key=key)


def cmd_replay(args) -> int:
    recording = _load_recording(args.recording, verify=True)
    graph = build_model(recording.workload)
    sku_name = None
    for sku in SKU_DATABASE:
        if sku.fingerprint() == tuple(recording.sku_fingerprint):
            sku_name = sku.name
            break
    if sku_name is None:
        print("error: recording's SKU fingerprint matches no known SKU",
              file=sys.stderr)
        return 1
    device = ClientDevice.for_workload(graph, sku=find_sku(sku_name))
    with open(args.recording + ".key") as fh:
        key = SigningKey("grt-recording-service",
                         bytes.fromhex(fh.read().strip()))
    tracer = _make_trace(args)
    if tracer is not None:
        tracer.set_clock(device.clock, domain="replay")
    compiled_cache = None
    if args.store:
        from repro.fleet.registry import RecordingRegistry
        from repro.store import resolve_store
        compiled_cache = RecordingRegistry(
            store=resolve_store(args.store, tracer=tracer))
    replayer = Replayer(device.optee, device.gpu, device.mem, device.clock,
                        verify_key=key, engine=args.engine, tracer=tracer,
                        compiled_cache=compiled_cache,
                        tenant_id=args.tenant)
    weights = generate_weights(graph, seed=args.seed)
    session = replayer.open(recording, weights)
    rng = np.random.RandomState(args.input_seed)
    run_rows = []
    if args.fmt != "json":
        print(f"replaying {recording.workload} ({recording.recorder} "
              f"recording) on {sku_name} "
              f"[weight seed {args.seed}, input seed {args.input_seed}]:")
    for i in range(args.runs):
        image = rng.rand(*graph.input_shape).astype(np.float32)
        if args.stream:
            t_prev = [0.0]

            def on_segment(label, activation, _t=t_prev):
                if args.fmt != "json":
                    out_shape = "x".join(map(str, activation.shape))
                    print(f"    layer {label:14s} -> {out_shape}")
                return False

            out = session.run_streamed(image, on_segment)
        else:
            out = session.run(image)
        run_rows.append({"run": i, "class": int(out.output.argmax()),
                         "delay_s": out.delay_s,
                         "energy_j": out.energy_j})
        if args.fmt != "json":
            print(f"  run {i}: class {out.output.argmax():4d} | "
                  f"delay {out.delay_s * 1e3:7.2f} ms | "
                  f"energy {out.energy_j * 1e3:6.1f} mJ")
    _write_trace(args, tracer)
    store_stats = None
    if compiled_cache is not None and \
            compiled_cache.artifact_store is not None:
        store_stats = compiled_cache.artifact_store.stats.as_dict()
        if args.fmt != "json":
            print(f"  store: {store_stats['hits']} hit(s), "
                  f"{store_stats['misses']} miss(es), "
                  f"{store_stats['publishes']} publish(es)")
    if args.fmt == "json":
        doc = {
            "workload": recording.workload, "recorder": recording.recorder,
            "sku": sku_name, "engine": args.engine, "seed": args.seed,
            "input_seed": args.input_seed, "runs": run_rows,
        }
        if store_stats is not None:
            doc["store"] = store_stats
        print(json_envelope("replay", doc))
    return 0


def cmd_inspect(args) -> int:
    recording = _load_recording(args.recording, verify=False)
    if args.fmt == "json":
        manifest = recording.manifest
        weights = manifest.weight_bindings()
        print(json_envelope("inspect", {
            "workload": recording.workload,
            "recorder": recording.recorder,
            "sku_fingerprint": list(recording.sku_fingerprint),
            "entries": recording.counts(),
            "data_pages": len(recording.data_pfns),
            "jobs": manifest.total_jobs,
            "segments": [{"label": label, "entries": len(entries)}
                         for label, entries in recording.segments()],
            "weight_tensors": len(weights),
            "weight_bytes": sum(w.size for w in weights),
        }))
        return 0
    print(f"workload     : {recording.workload}")
    print(f"recorder     : {recording.recorder}")
    print(f"sku          : {recording.sku_fingerprint}")
    counts = recording.counts()
    print(f"entries      : {sum(counts.values())} "
          f"({', '.join(f'{k}={v}' for k, v in counts.items() if v)})")
    print(f"data pages   : {len(recording.data_pfns)} (never recorded)")
    manifest = recording.manifest
    print(f"jobs         : {manifest.total_jobs}")
    print("segments     :")
    for label, entries in recording.segments():
        print(f"  {label:20s} {len(entries):5d} entries")
    print("data bindings:")
    for b in manifest.bindings:
        if b.kind in ("input", "output"):
            print(f"  {b.kind:6s} {b.name:14s} va={b.va:#x} "
                  f"shape={tuple(b.shape)}")
    weights = manifest.weight_bindings()
    print(f"  plus {len(weights)} weight/bias tensors "
          f"({sum(w.size for w in weights)} bytes, injected at replay)")
    return 0


def cmd_fleet(args) -> int:
    for name, value, floor in (("--clients", args.clients, 0),
                               ("--capacity", args.capacity, 1),
                               ("--warm", args.warm, 0),
                               ("--queue", args.queue, 0),
                               ("--tenants", args.tenants, 1)):
        if value is not None and value < floor:
            print(f"error: {name} must be >= {floor}", file=sys.stderr)
            return 2
    if args.arrival_rate <= 0:
        print("error: --arrival-rate must be positive", file=sys.stderr)
        return 2
    if not 0.0 <= args.vm_failure_rate <= 1.0:
        print("error: --vm-failure-rate must be in [0, 1]", file=sys.stderr)
        return 2
    tenants = args.tenants or max(2, args.clients // 10)
    generator = WorkloadGenerator(seed=args.seed,
                                  arrival_rate_hz=args.arrival_rate,
                                  tenants=tenants)
    requests = generator.generate(args.clients)
    tracer = _make_trace(args)
    if args.vm_failure_rate > 0:
        from repro.resilience.failover import (
            FleetFaultPlan,
            ResilientFleetSimulation,
        )
        sim = ResilientFleetSimulation(
            requests,
            fault_plan=FleetFaultPlan(seed=args.seed,
                                      vm_failure_rate=args.vm_failure_rate),
            capacity=args.capacity, warm_target=args.warm,
            queue_limit=args.queue, tracer=tracer, store=args.store)
    else:
        sim = FleetSimulation(requests, capacity=args.capacity,
                              warm_target=args.warm,
                              queue_limit=args.queue, tracer=tracer,
                              store=args.store)
    sim.run()
    summary = sim.summary()
    summary["config"] = {
        "clients": args.clients, "seed": args.seed, "tenants": tenants,
        "arrival_rate_hz": args.arrival_rate, "capacity": args.capacity,
        "warm_target": args.warm, "queue_limit": args.queue,
        "vm_failure_rate": args.vm_failure_rate,
    }
    _write_trace(args, tracer)
    if args.fmt == "json":
        print(json_envelope("fleet", summary))
    else:
        print(f"fleet: {args.clients} sessions, {tenants} tenants, "
              f"seed {args.seed}, {args.arrival_rate:g}/s arrivals")
        print()
        print(fleet_summary_tables(summary))
    if args.json:
        blob = json.dumps(summary, indent=2, sort_keys=True)
        with open(args.json, "w") as fh:
            fh.write(blob + "\n")
        if args.fmt != "json":
            print(f"\nwrote {args.json}")
    return 0


def cmd_chaos(args) -> int:
    from repro.resilience.experiment import (
        DEFAULT_PLANS,
        run_chaos_experiment,
    )

    if args.warm < 0:
        print("error: --warm must be >= 0", file=sys.stderr)
        return 2
    plans = args.plan or list(DEFAULT_PLANS)
    tracer = _make_trace(args)
    try:
        report = run_chaos_experiment(
            workload=args.workload, recorder=RECORDERS[args.recorder],
            link=LINKS[args.link], plans=plans, seed=args.seed,
            warm_rounds=args.warm, sanitize=args.sanitize,
            tracer=tracer)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    summary = report.summary()
    _write_trace(args, tracer)
    if args.fmt == "json":
        print(json_envelope("chaos", summary))
    else:
        print(f"chaos: {args.workload} via {args.recorder} over "
              f"{args.link}, seed {args.seed}, {len(plans)} fault plan(s)")
        print()
        print(chaos_summary_tables(summary))
    if args.json:
        blob = json.dumps(summary, indent=2, sort_keys=True)
        with open(args.json, "w") as fh:
            fh.write(blob + "\n")
        if args.fmt != "json":
            print(f"\nwrote {args.json}")
    return 0 if report.all_identical else 1


def cmd_serve(args) -> int:
    """Serve a replay burst for real: asyncio front end, multiprocessing
    shard pool, planning-oracle predictions scored against wall clock."""
    from repro.serve import ServeCatalog, make_burst, serve_burst

    for name, value, floor in (("--requests", args.requests, 0),
                               ("--workers", args.workers, 1),
                               ("--tenants", args.tenants, 1),
                               ("--batch-max", args.batch_max, 1),
                               ("--queue-limit", args.queue_limit, 1),
                               ("--runs", args.runs, 1)):
        if value < floor:
            print(f"error: {name} must be >= {floor}", file=sys.stderr)
            return 2
    if args.arrival_rate < 0:
        print("error: --arrival-rate must be >= 0", file=sys.stderr)
        return 2
    workloads = args.workload or ["mnist"]
    requests = make_burst(workloads, args.requests, tenants=args.tenants,
                          seed=args.seed, arrival_rate_hz=args.arrival_rate,
                          runs=args.runs)
    tracer = _make_trace(args)
    if tracer is not None:
        tracer.domain = "serve"
    catalog = ServeCatalog(recorder=RECORDERS[args.recorder],
                           seed=args.seed)
    sanitizer = None
    if args.racesan:
        from repro.check import RaceSan
        sanitizer = RaceSan(strict=False)
    report = serve_burst(requests, catalog=catalog, workers=args.workers,
                         batch_max=args.batch_max,
                         tenant_queue_limit=args.queue_limit,
                         tracer=tracer, verify=args.verify,
                         store=args.store, sanitizer=sanitizer)
    summary = dict(report.summary)
    summary["warm_s"] = round(report.warm_s, 6)
    if sanitizer is not None:
        summary["racesan"] = sanitizer.summary()
    summary["config"] = {
        "workloads": workloads, "requests": args.requests,
        "tenants": args.tenants, "workers": args.workers,
        "batch_max": args.batch_max, "queue_limit": args.queue_limit,
        "seed": args.seed, "arrival_rate_hz": args.arrival_rate,
        "runs": args.runs, "recorder": args.recorder,
    }
    _write_trace(args, tracer)
    failures = []
    if args.p99_bound is not None:
        p99 = summary["latency_s"]["overall"]["p99"]
        if p99 > args.p99_bound:
            failures.append(f"p99 {p99:.3f}s exceeds bound "
                            f"{args.p99_bound:g}s")
    if args.verify and not summary.get("bit_identical", False):
        failures.append("served outputs diverged from the single-process "
                        "reference")
    if sanitizer is not None:
        for violation in sanitizer.violations:
            failures.append(f"racesan: {violation}")
    if args.fmt == "json":
        summary["failures"] = failures
        print(json_envelope("serve", summary))
    else:
        print(f"serve: {args.requests} requests over {args.workers} "
              f"worker(s), {args.tenants} tenant(s), seed {args.seed} "
              f"(warm {report.warm_s:.2f} s, excluded)")
        print()
        print(serve_summary_tables(summary))
        for failure in failures:
            print(f"FAIL: {failure}")
    if args.json:
        blob = json.dumps(summary, indent=2, sort_keys=True)
        with open(args.json, "w") as fh:
            fh.write(blob + "\n")
        if args.fmt != "json":
            print(f"\nwrote {args.json}")
    return 1 if failures else 0


def cmd_check(args) -> int:
    import os

    from repro.check import runner as check_runner

    if args.write_baseline:
        argv = list(args.paths)
        if args.baseline:
            argv += ["--baseline", args.baseline]
        if args.concurrency:
            argv += ["--concurrency"]
        argv += ["--write-baseline"]
        return check_runner.main(argv)
    baseline = args.baseline
    if baseline is None and not args.paths:
        candidate = os.path.join(check_runner._repo_root(),
                                 check_runner.DEFAULT_BASELINE)
        if os.path.exists(candidate):
            baseline = candidate
    report = check_runner.run_check(paths=args.paths or None,
                                    baseline=baseline,
                                    concurrency=args.concurrency)
    if args.fmt == "json":
        print(json_envelope("check", json.loads(report.to_json())))
        return 0 if report.ok else 1
    # Text mode: the aligned conformance tables.
    print(check_summary_tables(report))
    for finding in sorted(report.findings, key=lambda f: (f.path, f.line)):
        print(finding.render())
    return 0 if report.ok else 1


def cmd_perf(args) -> int:
    from repro.analysis import perf
    from repro.analysis.report import perf_summary_tables

    if args.serve:
        return _cmd_perf_serve(args)
    doc = perf.run_perf(quick=args.quick, reps=args.reps,
                        epochs=args.epochs, store_root=args.store)
    path = perf.write_bench(doc, args.out)
    text = args.fmt != "json"
    if text:
        print(perf_summary_tables(doc))
        print(f"\nwrote {path}")

    identical = all(all(r["identical"].values()) for r in doc["replay"])
    identical = identical and all(m["peer_views_equal"]
                                  for m in doc["memsync"])
    failures = []
    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        failures = perf.compare_baseline(doc, baseline)
    if not text:
        print(json_envelope("perf", {
            "bench": doc, "out": path, "identical": identical,
            "regressions": failures,
        }))
    if not identical:
        if text:
            print("FAIL: fast path diverged from the legacy path")
        return 1
    if args.baseline:
        if text:
            for failure in failures:
                print(f"REGRESSION: {failure}")
        if failures:
            return 1
        if text:
            print("baseline gate passed")
    return 0


def _cmd_perf_serve(args) -> int:
    """``repro perf --serve``: the wall-clock serving harness."""
    from repro.analysis import perf
    from repro.analysis.report import format_table

    doc = perf.run_serve_perf(quick=args.quick)
    out = args.out
    if out == "BENCH_replay.json":
        out = perf.BENCH_SERVE_FILENAME
    path = perf.write_bench(doc, out)
    failures = []
    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        failures = perf.compare_serve_baseline(doc, baseline)
    text = args.fmt != "json"
    if text:
        rows = []
        for r in doc["serve"]:
            rows.append([
                r["workload"], r["requests"], r["workers"],
                r["single"]["throughput_rps"],
                r["pool"]["throughput_rps"],
                f"{r['speedup']:.2f}x",
                r["pool"]["p99_s"] * 1e3,
                "yes" if r["bit_identical"] else "NO"])
        print(format_table(
            "Serve wall clock - single worker vs shard pool",
            ["workload", "reqs", "workers", "1w rps", "pool rps",
             "speedup", "p99 ms", "identical"], rows))
        print(f"\nmachine 2-process scaling ceiling: "
              f"{doc['machine_scaling_2proc']:.2f}x (ideal 2.00x)")
        print(f"wrote {path}")
        for failure in failures:
            print(f"REGRESSION: {failure}")
        if args.baseline and not failures:
            print("serve baseline gate passed")
    else:
        print(json_envelope("perf", {
            "bench": doc, "out": path,
            "identical": all(r["bit_identical"] for r in doc["serve"]),
            "regressions": failures,
        }))
    return 1 if failures else 0


def cmd_store(args) -> int:
    """Operate on an on-disk compiled-artifact store: list, garbage-
    collect, deep-verify, or remove entries."""
    import dataclasses as dc

    from repro.store import DiskStore, resolve_store_path

    path = args.path or resolve_store_path(None)
    if not path:
        print("error: give a store path (or set REPRO_STORE)",
              file=sys.stderr)
        return 2
    store = DiskStore(path)
    command = f"store-{args.action}"

    if args.action == "ls":
        doc = {"root": str(store.root), "entries": store.entries(),
               "total_bytes": store.nbytes(),
               "stats": store.persisted_stats()}
        if args.fmt == "json":
            print(json_envelope(command, doc))
        else:
            print(store_summary_tables(doc))
        return 0

    if args.action == "gc":
        receipts = store.gc(max_bytes=args.max_bytes)
        doc = {"root": str(store.root),
               "evicted": [dc.asdict(r) for r in receipts],
               "remaining": len(store),
               "remaining_bytes": store.nbytes()}
        if args.fmt == "json":
            print(json_envelope(command, doc))
        else:
            for r in receipts:
                print(f"evicted {r.recording_digest[:12]} "
                      f"(tenant {r.tenant_id}, {r.nbytes} bytes, "
                      f"{r.reason})")
            print(f"{len(receipts)} artifact(s) evicted; "
                  f"{doc['remaining']} remain "
                  f"({doc['remaining_bytes']} bytes)")
        return 0

    if args.action == "verify":
        rows = store.verify_all()
        bad = [r for r in rows if not r["ok"]]
        doc = {"root": str(store.root), "checked": len(rows),
               "failed": len(bad), "entries": rows}
        if args.fmt == "json":
            print(json_envelope(command, doc))
        else:
            for r in rows:
                mark = "ok  " if r["ok"] else "FAIL"
                name = r["recording_digest"][:12] or "?"
                print(f"{mark} {name}  tenant={r['tenant_id'] or '?'}"
                      + (f"  {r['error']}" if r["error"] else ""))
            print(f"{len(rows)} artifact(s) checked, {len(bad)} failed")
        return 1 if bad else 0

    # rm: one digest, or a tenant's whole bucket
    if args.digest:
        receipts = store.remove(args.tenant, args.digest)
    else:
        receipts = store.evict_tenant(args.tenant)
    doc = {"root": str(store.root), "tenant": args.tenant,
           "digest": args.digest,
           "removed": [dc.asdict(r) for r in receipts]}
    if args.fmt == "json":
        print(json_envelope(command, doc))
    else:
        for r in receipts:
            print(f"removed {r.recording_digest[:12]} "
                  f"(tenant {r.tenant_id}, {r.nbytes} bytes)")
        print(f"{len(receipts)} artifact(s) removed")
    return 0


def cmd_diff(args) -> int:
    a = _load_recording(args.a, verify=False)
    b = _load_recording(args.b, verify=False)
    report = diff_recordings(a, b, max_divergences=args.max)
    if args.fmt == "json":
        print(json_envelope("diff", {
            "a": args.a, "b": args.b,
            "identical": report.identical,
            "summary": report.summary(),
            "divergences": [str(d) for d in report.divergences],
        }))
        return 0 if report.identical else 2
    print(report.summary())
    for div in report.divergences:
        print(f"  {div}")
    return 0 if report.identical else 2


def _trace_schema_path() -> str:
    import os

    from repro.analysis.report import RESULTS_DIR
    return os.path.join(os.path.dirname(RESULTS_DIR), "trace_schema.json")


def cmd_trace(args) -> int:
    """Record + replay one workload with the tracer on; write a
    Chrome-trace JSON and validate it against the checked-in schema."""
    from repro import api

    config = RECORDERS[args.recorder]
    link = LINKS[args.link]
    sku = find_sku(args.sku) if args.sku else HIKEY960_G71
    warm = args.warm
    runs = args.runs
    if args.quick:
        warm = min(warm, 1)
        runs = 1

    tracer = Tracer()
    result = api.record(args.workload, recorder=config, sku=sku,
                        network=link, seed=args.seed, warm=warm,
                        trace=tracer)
    graph = build_model(result.recording.workload)
    device = ClientDevice.for_workload(graph, sku=sku)
    tracer.set_clock(device.clock, domain="replay")
    replayer = Replayer(device.optee, device.gpu, device.mem, device.clock,
                        verify_key=result.verify_key, engine=args.engine,
                        tracer=tracer)
    session = replayer.open(result.recording,
                            generate_weights(graph, seed=args.seed))
    image = np.zeros(graph.input_shape, dtype=np.float32)
    for _ in range(max(1, runs)):
        # Streamed replay, so the trace carries per-segment spans to
        # line up against the record phase's segment events.
        session.run_streamed(image, lambda label, activation: False)
    tracer.finish_open()
    write_chrome_trace(tracer, args.out)

    with open(args.out) as fh:
        doc = json.load(fh)
    with open(_trace_schema_path()) as fh:
        schema = json.load(fh)
    errors = validate_schema(doc, schema)
    summary = trace_summary(tracer)
    summary["workload"] = args.workload
    summary["out"] = args.out
    summary["schema_valid"] = not errors
    if args.fmt == "json":
        summary["schema_errors"] = errors[:20]
        print(json_envelope("trace", summary))
    else:
        print(f"traced {args.workload} via {config.name} over {link.name} "
              f"(warm {warm}, {runs} replay run(s)):")
        print(f"  spans {summary['spans']} | events {summary['events']} "
              f"| dropped {summary['dropped']}")
        for cat, n in summary["categories"].items():
            print(f"    {cat:12s} {n:6d}")
        print(f"  wrote {args.out} "
              f"(virtual end {summary['virtual_end_s']:.3f} s)")
        for err in errors[:10]:
            print(f"  SCHEMA: {err}", file=sys.stderr)
        if errors:
            print(f"FAIL: {len(errors)} schema violation(s)",
                  file=sys.stderr)
        else:
            print("  schema: valid (benchmarks/trace_schema.json)")
    return 1 if errors else 0


def _add_format(p: argparse.ArgumentParser) -> None:
    """``--format {text,json}``, shared by every subcommand; json wraps
    the command's data in the ``json_envelope`` shape."""
    p.add_argument("--format", choices=("text", "json"), default="text",
                   dest="fmt")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GR-T: safe and practical GPU computation in "
                    "TrustZone (EuroSys'23 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("skus", help="list the mobile GPU SKU database")
    p.add_argument("--family", choices=sorted({s.family
                                               for s in SKU_DATABASE}))
    _add_format(p)
    p.set_defaults(fn=cmd_skus)

    p = sub.add_parser("workloads", help="list the evaluation workloads")
    _add_format(p)
    p.set_defaults(fn=cmd_workloads)

    p = sub.add_parser("record", help="record a workload via the cloud")
    p.add_argument("--workload", required=True,
                   choices=sorted([*PAPER_WORKLOADS, *EXTRA_WORKLOADS]))
    p.add_argument("--recorder", default="OursMDS",
                   choices=sorted(RECORDERS))
    p.add_argument("--link", default="wifi", choices=sorted(LINKS))
    p.add_argument("--sku", default=None,
                   help="client GPU SKU name (default: Mali-G71 MP8)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--warm", type=int, default=3,
                   help="history warm-up runs before the recorded one")
    p.add_argument("--out", "-o", required=True)
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="write a Chrome-trace JSON of the final record "
                        "run to PATH")
    _add_format(p)
    p.set_defaults(fn=cmd_record)

    p = sub.add_parser("replay", help="replay a recording in the TEE")
    p.add_argument("--recording", "-r", required=True)
    p.add_argument("--seed", type=int, default=0,
                   help="model weight seed (the confidential parameters)")
    p.add_argument("--input-seed", type=int, default=1)
    p.add_argument("--runs", type=int, default=1)
    p.add_argument("--stream", action="store_true",
                   help="replay segment by segment, printing each layer")
    p.add_argument("--engine", choices=("auto", "compiled", "legacy"),
                   default="auto",
                   help="replay engine (default auto: compiled when the "
                        "device supports batching)")
    p.add_argument("--store", default=None, metavar="PATH",
                   help="compiled-artifact store directory: open the "
                        "program from it when published, publish after "
                        "compiling otherwise")
    p.add_argument("--tenant", default="local",
                   help="tenant namespace for --store lookups")
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="write a Chrome-trace JSON of the replay to PATH")
    _add_format(p)
    p.set_defaults(fn=cmd_replay)

    p = sub.add_parser("inspect", help="summarize a recording file")
    p.add_argument("recording")
    _add_format(p)
    p.set_defaults(fn=cmd_inspect)

    p = sub.add_parser("fleet", help="simulate the multi-tenant serving "
                                     "layer under Poisson load")
    p.add_argument("--clients", type=int, default=200,
                   help="number of client sessions to offer")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--tenants", type=int, default=None,
                   help="tenant population (default: clients // 10)")
    p.add_argument("--arrival-rate", type=float, default=2.0,
                   help="Poisson arrival rate, sessions/s")
    p.add_argument("--capacity", type=int, default=16,
                   help="max concurrent session VMs")
    p.add_argument("--warm", type=int, default=8,
                   help="warm-boot pool target size")
    p.add_argument("--queue", type=int, default=24,
                   help="admission queue limit before rejection")
    p.add_argument("--json", default=None,
                   help="also write the metrics JSON to this path")
    p.add_argument("--vm-failure-rate", type=float, default=0.0,
                   help="per-attempt probability a session VM dies "
                        "mid-dry-run (failover via checkpoint resume)")
    p.add_argument("--store", default=None, metavar="PATH",
                   help="attach an on-disk compiled-artifact store as "
                        "the registry's second cache tier")
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="write a Chrome-trace JSON of every session's "
                        "stages to PATH")
    _add_format(p)
    p.set_defaults(fn=cmd_fleet)

    p = sub.add_parser("chaos", help="record under WAN fault plans and "
                                     "verify recordings stay byte-"
                                     "identical to the fault-free run")
    p.add_argument("--workload", default="mnist",
                   choices=sorted([*PAPER_WORKLOADS, *EXTRA_WORKLOADS]))
    p.add_argument("--recorder", default="OursMDS",
                   choices=sorted(RECORDERS))
    p.add_argument("--link", default="wifi", choices=sorted(LINKS))
    p.add_argument("--plan", action="append", default=None,
                   help="fault plan: a preset (loss-only, disconnect, "
                        "combined) or a spec like "
                        "'loss=0.01,jitter=0.005@0.02,window=2+1'; "
                        "repeatable (default: all three presets)")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for the fault schedule and the workload")
    p.add_argument("--warm", type=int, default=1,
                   help="history warm-up runs shared by every plan")
    p.add_argument("--sanitize", action="store_true",
                   help="run SpecSan (strict) during every record run")
    p.add_argument("--json", default=None,
                   help="also write the chaos report JSON to this path")
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="write a Chrome-trace JSON of the faulty record "
                        "runs to PATH")
    _add_format(p)
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser("serve", help="serve a replay burst for real: "
                                     "asyncio front end over a "
                                     "multiprocessing shard pool")
    p.add_argument("--workload", action="append", default=None,
                   choices=sorted([*PAPER_WORKLOADS, *EXTRA_WORKLOADS]),
                   help="workload(s) in the request mix; repeatable "
                        "(default: mnist)")
    p.add_argument("--requests", type=int, default=24,
                   help="number of replay requests to offer")
    p.add_argument("--workers", type=int, default=2,
                   help="shard worker processes")
    p.add_argument("--tenants", type=int, default=2,
                   help="tenant population (requests round-robin)")
    p.add_argument("--batch-max", type=int, default=4,
                   help="max requests per shard dispatch")
    p.add_argument("--queue-limit", type=int, default=32,
                   help="per-tenant admission queue bound; over-limit "
                        "arrivals are rejected")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--arrival-rate", type=float, default=0.0,
                   help="Poisson arrival rate in req/s (0 = closed burst)")
    p.add_argument("--runs", type=int, default=1,
                   help="replay runs per request")
    p.add_argument("--recorder", default="OursMDS",
                   choices=sorted(RECORDERS))
    p.add_argument("--p99-bound", type=float, default=None,
                   help="fail (exit 1) when overall p99 latency exceeds "
                        "this many seconds")
    p.add_argument("--verify", action="store_true",
                   help="re-execute the burst single-process and fail "
                        "unless outputs are bit-identical")
    p.add_argument("--racesan", action="store_true",
                   help="run the happens-before/lock-order sanitizer "
                        "over the pool and engine; any race or lock "
                        "cycle fails the run (exit 1)")
    p.add_argument("--store", default=None, metavar="PATH",
                   help="shared compiled-artifact store directory: "
                        "workers publish on first warm and open on "
                        "every later warm (including across restarts)")
    p.add_argument("--json", default=None,
                   help="also write the serve summary JSON to this path")
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="write a Chrome-trace JSON of every request's "
                        "serve span to PATH")
    _add_format(p)
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("check", help="static driver-conformance analyzer "
                                     "(bus confinement, §4.3 poll "
                                     "discovery, sym-force, determinism)")
    p.add_argument("paths", nargs="*",
                   help="specific files (default: the whole src/repro tree)")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   dest="fmt")
    p.add_argument("--baseline", default=None,
                   help="accepted-findings fingerprint file "
                        "(default: <repo>/check_baseline.json when present)")
    p.add_argument("--write-baseline", action="store_true",
                   help="accept all current findings into the baseline")
    p.add_argument("--concurrency", action="store_true",
                   help="also run the concurrency rules (conc-* codes): "
                        "shared-state lock discipline, lock order, "
                        "await-holding-lock, unjoined threads")
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser("perf", help="wall-clock benchmark of the replay "
                                    "and memsync hot paths")
    p.add_argument("--quick", action="store_true",
                   help="CI smoke shape: streaming workload only, "
                        "fewer reps")
    p.add_argument("--reps", type=int, default=5,
                   help="interleaved timed replay runs per engine")
    p.add_argument("--epochs", type=int, default=6,
                   help="sync epochs for the memsync drive (first is "
                        "cold start, excluded from throughput)")
    p.add_argument("--out", default="BENCH_replay.json",
                   help="where to write the benchmark document")
    p.add_argument("--baseline",
                   help="gate against this baseline JSON; exit 1 on "
                        ">2x throughput regression")
    p.add_argument("--serve", action="store_true",
                   help="run the serving harness instead (shard-pool "
                        "throughput vs single worker, bit-identity); "
                        "writes BENCH_serve.json")
    p.add_argument("--store", default=None, metavar="PATH",
                   help="parent directory for the cold-start bench's "
                        "per-rep artifact stores (benchmark the disk "
                        "you deploy on; default: the system tmpdir)")
    _add_format(p)
    p.set_defaults(fn=cmd_perf)

    p = sub.add_parser("store", help="inspect and maintain an on-disk "
                                     "compiled-artifact store")
    p.add_argument("action", choices=("ls", "gc", "verify", "rm"),
                   help="ls: list entries + counters; gc: evict stale "
                        "layouts and enforce a size budget; verify: "
                        "deep-open every artifact (crc + sha + tenant "
                        "bucket); rm: remove one digest or a tenant's "
                        "whole bucket")
    p.add_argument("path", nargs="?", default=None,
                   help="store directory (default: $REPRO_STORE)")
    p.add_argument("--max-bytes", type=int, default=None,
                   help="gc: size budget to enforce (default: the "
                        "store's configured budget, i.e. none)")
    p.add_argument("--tenant", default="local",
                   help="rm: tenant namespace to remove from")
    p.add_argument("--digest", default=None,
                   help="rm: recording digest to remove (default: the "
                        "tenant's whole bucket)")
    _add_format(p)
    p.set_defaults(fn=cmd_store)

    p = sub.add_parser("diff", help="compare two recordings (remote "
                                    "debugging, §3)")
    p.add_argument("a")
    p.add_argument("b")
    p.add_argument("--max", type=int, default=16)
    _add_format(p)
    p.set_defaults(fn=cmd_diff)

    p = sub.add_parser("trace", help="record + replay one workload with "
                                     "the tracer on; write a Chrome-trace "
                                     "JSON (chrome://tracing, Perfetto)")
    p.add_argument("workload",
                   choices=sorted([*PAPER_WORKLOADS, *EXTRA_WORKLOADS]))
    p.add_argument("--recorder", default="OursMDS",
                   choices=sorted(RECORDERS))
    p.add_argument("--link", default="wifi", choices=sorted(LINKS))
    p.add_argument("--sku", default=None,
                   help="client GPU SKU name (default: Mali-G71 MP8)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--warm", type=int, default=3,
                   help="untraced history warm-up record runs")
    p.add_argument("--runs", type=int, default=2,
                   help="traced replay runs (streamed, per-segment)")
    p.add_argument("--engine", choices=("auto", "compiled", "legacy"),
                   default="auto")
    p.add_argument("--quick", action="store_true",
                   help="CI smoke shape: one warm-up, one replay run")
    p.add_argument("--out", "-o", default="trace.json",
                   help="Chrome-trace output path (default: trace.json)")
    _add_format(p)
    p.set_defaults(fn=cmd_trace)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
