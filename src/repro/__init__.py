"""GR-T: Safe and Practical GPU Computation in TrustZone (EuroSys 2023).

A full-system reproduction, in simulation, of the paper's record/replay
architecture for TEE GPU computation: a cloud service dry-runs the mobile
GPU software stack while the physical GPU stays on the client inside a
TrustZone TEE; register-access deferral, speculation, polling-loop
offloading, and meta-only memory synchronization hide the WAN between
them; the client later replays the signed recording inside the TEE with
no GPU stack at all.

Quickstart::

    import repro

    result = repro.record("mnist")       # cloud dry run -> RecordResult
    out = repro.replay(result)           # client TEE -> ReplayResult

    # Observe the phases (§4/§5) while doing it:
    tracer = repro.Tracer()
    result = repro.record("mnist", trace=tracer)
    repro.replay(result, trace=tracer)   # same trace, "replay" row

The facade wraps the constructor-level API (:class:`RecordSession`,
:class:`Replayer`), which remains fully supported for multi-session
work (shared histories, fleets, fault plans).  See DESIGN.md for the
system inventory and EXPERIMENTS.md for the paper-vs-measured results
of every table and figure.
"""

from repro.api import record, replay
from repro.core import (
    NAIVE,
    OURS_M,
    OURS_MD,
    OURS_MDS,
    RECORDER_VARIANTS,
    ClientDevice,
    MispredictionDetected,
    NativeResult,
    RecordResult,
    RecordSession,
    RecorderConfig,
    Recording,
    RecordingFormatError,
    ReplayError,
    ReplayResult,
    Replayer,
    native_run,
)
from repro.hw.sku import HIKEY960_G71, SKU_DATABASE, GpuSku, find_sku
from repro.ml.models import PAPER_WORKLOADS, build_model
from repro.ml.runner import generate_weights, reference_forward
from repro.obs import MetricsRegistry, StatsBase, StatsProtocol, Tracer
from repro.resilience import ChannelDisconnected, FaultPlan
from repro.sim.network import CELLULAR, WIFI, LinkProfile
from repro.store import DiskStore, MemoryStore

__version__ = "1.2.0"

__all__ = [
    "record",
    "replay",
    "Tracer",
    "MetricsRegistry",
    "StatsBase",
    "StatsProtocol",
    "NAIVE",
    "OURS_M",
    "OURS_MD",
    "OURS_MDS",
    "RECORDER_VARIANTS",
    "RecorderConfig",
    "RecordSession",
    "RecordResult",
    "Recording",
    "RecordingFormatError",
    "Replayer",
    "ReplayResult",
    "ReplayError",
    "MispredictionDetected",
    "ChannelDisconnected",
    "FaultPlan",
    "ClientDevice",
    "native_run",
    "NativeResult",
    "GpuSku",
    "HIKEY960_G71",
    "SKU_DATABASE",
    "find_sku",
    "PAPER_WORKLOADS",
    "build_model",
    "generate_weights",
    "reference_forward",
    "WIFI",
    "CELLULAR",
    "LinkProfile",
    "DiskStore",
    "MemoryStore",
    "__version__",
]
