"""Fleet failover: sessions survive VM deaths via checkpoint resume.

§3.2 binds every session to one single-use VM; when that VM dies
mid-dry-run the session's work would be lost — except that the recorder
checkpoints at commit-log watermarks (:mod:`repro.resilience.checkpoint`).
This module injects seeded VM deaths into the fleet simulation and routes
the orphaned sessions back through admission control:

    dry run ── VM dies ──> release lease (VM destroyed, §3.1 — no reuse)
            ──> re-acquire via the pool (admission control still applies;
                a saturated pool rejects the failover like any arrival)
            ──> boot + re-attest + handshake on the fresh VM
            ──> resume: redo only the work since the last checkpoint

Deaths are a pure function of (seed, request, attempt), so a fleet run
with faults is exactly as reproducible as one without.  Progress is
quantized to ``checkpoint_interval_s`` — the fleet-level analogue of the
recorder's memsync-watermark checkpoints — and each failover pays a
fixed ``resume_overhead_s`` for checkpoint verification + fast-forward
replay on the new VM.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.fleet.pool import PoolSaturated
from repro.fleet.scheduler import Timeout
from repro.fleet.session import FleetSimulation, SessionCosts
from repro.fleet.workload import SessionRequest
from repro.hw.sku import find_sku
from repro.kernel.devicetree import FAMILY_COMPATIBLE, board_device_tree


@dataclass(frozen=True)
class FleetFaultPlan:
    """Deterministic, seeded VM-death schedule for a fleet run.

    ``draw(request_id, attempt)`` returns ``None`` (the attempt
    completes) or the fraction of the attempt's remaining dry run at
    which the VM dies — both a pure function of the plan seed, so runs
    are reproducible and individual deaths can be replayed in tests.
    """

    seed: int = 0
    vm_failure_rate: float = 0.0
    checkpoint_interval_s: float = 0.25
    resume_overhead_s: float = 0.05
    max_failovers: int = 3

    def __post_init__(self) -> None:
        if not 0.0 <= self.vm_failure_rate <= 1.0:
            raise ValueError("vm_failure_rate must be a probability")
        if self.checkpoint_interval_s <= 0:
            raise ValueError("checkpoint_interval_s must be positive")

    def draw(self, request_id: str, attempt: int) -> Optional[float]:
        rng = random.Random(f"fleet:{self.seed}:{request_id}:{attempt}")
        if rng.random() >= self.vm_failure_rate:
            return None
        return rng.random()


class ResilientFleetSimulation(FleetSimulation):
    """A fleet simulation whose VMs die according to a fault plan."""

    def __init__(self, requests: List[SessionRequest],
                 fault_plan: Optional[FleetFaultPlan] = None,
                 **kwargs) -> None:
        super().__init__(requests, **kwargs)
        self.fault_plan = fault_plan or FleetFaultPlan()
        self.vm_deaths = 0
        self.failover_rejections = 0

    # ------------------------------------------------------------------
    def _dry_run_stage(self, request, record, lease, ticket,
                       costs: SessionCosts, key):
        plan = self.fault_plan
        remaining = costs.dry_run_s
        executed = 0.0
        attempt = 0
        while True:
            frac = (plan.draw(request.request_id, attempt)
                    if attempt < plan.max_failovers else None)
            if frac is None:
                yield Timeout(remaining, label="dry-run")
                executed += remaining
                break
            ran = remaining * frac
            yield Timeout(ran, label="dry-run")
            executed += ran
            died_at = self.clock.now
            self.vm_deaths += 1
            record.failovers += 1
            # Progress survives only up to the last checkpoint watermark;
            # the tail since then is redone on the replacement VM.
            done = costs.dry_run_s - remaining + ran
            checkpointed = (int(done / plan.checkpoint_interval_s)
                            * plan.checkpoint_interval_s)
            remaining = costs.dry_run_s - checkpointed
            # The dead VM is destroyed — same terminal state as a normal
            # release, so the no-reuse guarantee is untouched; the abort
            # is billed like a close but counted as abnormal.
            self.service.abort_session(ticket.session_id, clock=self.clock)
            self.pool.release(lease)
            self.pool.stats.failover_requeues += 1
            try:
                grant = self.pool.acquire(request.tenant_id)
            except PoolSaturated:
                self.failover_rejections += 1
                record.rejected = True
                return None, None
            lease = yield grant
            record.warm_vm = lease.warm
            yield Timeout(lease.boot_cost_s, label="boot")
            ticket = self._reattest(request, attempt)
            yield Timeout(costs.handshake_s, label="network")
            record.time_blocked_s += costs.handshake_s
            yield Timeout(plan.resume_overhead_s, label="resume")
            record.failover_wait_s += self.clock.now - died_at
            attempt += 1
        if costs.dry_run_s > 0:
            record.time_blocked_s += (executed * costs.dry_run_net_s
                                      / costs.dry_run_s)
        self._store_recording(request, key, costs)
        return lease, ticket

    # ------------------------------------------------------------------
    def _reattest(self, request, attempt: int):
        """Open + attest a fresh service session on the replacement VM."""
        sku = find_sku(request.sku_name)
        tree = board_device_tree(sku)
        compatible = FAMILY_COMPATIBLE[sku.family]
        image_name = self.service.image_for_family(compatible)
        nonce = hashlib.sha256(
            f"{request.request_id}:{request.tenant_id}:failover-{attempt}"
            .encode()).digest()
        ticket = self.service.open_session(
            request.tenant_id, image_name, tree, nonce, clock=self.clock)
        self.verifier.verify(ticket.attestation, nonce)
        return ticket

    # ------------------------------------------------------------------
    def summary(self) -> Dict:
        doc = super().summary()
        doc["vm_faults"] = {
            "seed": self.fault_plan.seed,
            "vm_failure_rate": self.fault_plan.vm_failure_rate,
            "checkpoint_interval_s": self.fault_plan.checkpoint_interval_s,
            "resume_overhead_s": self.fault_plan.resume_overhead_s,
            "max_failovers": self.fault_plan.max_failovers,
            "vm_deaths": self.vm_deaths,
            "failover_rejections": self.failover_rejections,
        }
        return doc


def run_resilient_fleet(requests: List[SessionRequest],
                        fault_plan: Optional[FleetFaultPlan] = None,
                        **kwargs) -> Dict:
    """Convenience: simulate ``requests`` under VM faults; return summary."""
    sim = ResilientFleetSimulation(requests, fault_plan=fault_plan, **kwargs)
    sim.run()
    return sim.summary()
