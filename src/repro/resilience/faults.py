"""Deterministic, seeded WAN fault plans (§3.3, §7.2 conditions).

The paper's whole setting is a cloud driver talking to a client TEE over
a flaky mobile link, yet the perfect :class:`~repro.sim.network.Link`
never loses, delays or duplicates anything.  A :class:`FaultPlan`
composes those behaviours onto any link profile:

* **packet loss** — each transmission is independently lost with
  probability ``loss_p``; the reliable channel times out and retries;
* **jitter spikes** — with probability ``jitter_p`` a transmission is
  delayed an extra ``jitter_s`` before delivery;
* **duplication / reordering** — with probability ``dup_p`` the network
  delivers a second copy (the channel's sequence-number dedup must
  suppress it); ``reorder_p`` delays a message behind a later one,
  which on GR-T's strictly alternating request/response traffic
  degenerates to added latency plus a dedup exercise;
* **disconnect windows** — absolute intervals of virtual time during
  which the link is down entirely; a session that hits one loses its
  channel (and its VM) and must resume from a checkpoint.

Determinism: the fate of the *i*-th transmission of a plan is drawn
from ``random.Random(f"{seed}:{i}")`` — a pure function of (plan seed,
transmission index), independent of process, platform and call pattern,
so the same seed always yields the same fault schedule and a faulty run
is exactly reproducible.  The injector's transmission counter persists
across reconnects: a resumed session continues the schedule rather than
restarting it.

Spec strings (CLI ``--plan``)::

    loss=0.01,jitter=0.004@0.02,dup=0.005,reorder=0.002,window=5+1.5

means 1% loss, 0.4% chance of a 20 ms jitter spike, 0.5% duplication,
0.2% reordering, and a disconnect window starting at t=5 s lasting
1.5 s.  ``window=`` may repeat.  The presets in :data:`PRESETS`
(``loss-only``, ``disconnect``, ``combined``) cover the three plan
shapes the resilience benchmark proves byte-identity under.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass(frozen=True)
class DisconnectWindow:
    """A closed interval of virtual time during which the link is down."""

    start_s: float
    duration_s: float

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def contains(self, t: float) -> bool:
        return self.start_s <= t < self.end_s


@dataclass(frozen=True)
class TxFate:
    """What the network does to one transmission."""

    lost: bool = False
    duplicated: bool = False
    reordered: bool = False
    jitter_s: float = 0.0


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded description of link misbehaviour."""

    name: str
    seed: int = 0
    loss_p: float = 0.0
    dup_p: float = 0.0
    reorder_p: float = 0.0
    jitter_p: float = 0.0
    jitter_s: float = 0.0
    windows: Tuple[DisconnectWindow, ...] = ()

    def __post_init__(self) -> None:
        for label, p in (("loss_p", self.loss_p), ("dup_p", self.dup_p),
                         ("reorder_p", self.reorder_p),
                         ("jitter_p", self.jitter_p)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{label} must be a probability, got {p}")
        if self.jitter_s < 0:
            raise ValueError("jitter_s must be >= 0")
        for w in self.windows:
            if w.start_s < 0 or w.duration_s <= 0:
                raise ValueError(f"bad disconnect window {w}")

    # ------------------------------------------------------------------
    def fate(self, index: int) -> TxFate:
        """The deterministic fate of transmission ``index``."""
        rng = random.Random(f"{self.seed}:{index}")
        lost = rng.random() < self.loss_p
        duplicated = rng.random() < self.dup_p
        reordered = rng.random() < self.reorder_p
        jitter = self.jitter_s if rng.random() < self.jitter_p else 0.0
        return TxFate(lost=lost, duplicated=duplicated,
                      reordered=reordered, jitter_s=jitter)

    def window_at(self, t: float) -> Optional[DisconnectWindow]:
        for w in self.windows:
            if w.contains(t):
                return w
        return None

    # ------------------------------------------------------------------
    def spec(self) -> str:
        """The compact spec string this plan round-trips through."""
        parts = []
        if self.loss_p:
            parts.append(f"loss={self.loss_p:g}")
        if self.jitter_p:
            parts.append(f"jitter={self.jitter_p:g}@{self.jitter_s:g}")
        if self.dup_p:
            parts.append(f"dup={self.dup_p:g}")
        if self.reorder_p:
            parts.append(f"reorder={self.reorder_p:g}")
        for w in self.windows:
            parts.append(f"window={w.start_s:g}+{w.duration_s:g}")
        return ",".join(parts) if parts else "none"

    @classmethod
    def parse(cls, spec: str, name: str = "custom",
              seed: int = 0) -> "FaultPlan":
        """Parse a spec string (or preset name) into a plan.

        Preset names resolve through :data:`PRESETS`, re-seeded with
        ``seed``.
        """
        if spec in PRESETS:
            preset = PRESETS[spec]
            return cls(name=preset.name, seed=seed, loss_p=preset.loss_p,
                       dup_p=preset.dup_p, reorder_p=preset.reorder_p,
                       jitter_p=preset.jitter_p, jitter_s=preset.jitter_s,
                       windows=preset.windows)
        kwargs = dict(loss_p=0.0, dup_p=0.0, reorder_p=0.0,
                      jitter_p=0.0, jitter_s=0.0)
        windows = []
        for part in spec.split(","):
            part = part.strip()
            if not part or part == "none":
                continue
            if "=" not in part:
                raise ValueError(f"bad fault-plan term {part!r} "
                                 f"(expected key=value)")
            key, _, value = part.partition("=")
            key = key.strip()
            try:
                if key == "loss":
                    kwargs["loss_p"] = float(value)
                elif key == "dup":
                    kwargs["dup_p"] = float(value)
                elif key == "reorder":
                    kwargs["reorder_p"] = float(value)
                elif key == "jitter":
                    prob, _, dur = value.partition("@")
                    kwargs["jitter_p"] = float(prob)
                    kwargs["jitter_s"] = float(dur) if dur else 0.010
                elif key == "window":
                    start, sep, dur = value.partition("+")
                    if not sep:
                        raise ValueError("window needs start+duration")
                    windows.append(DisconnectWindow(float(start), float(dur)))
                else:
                    raise ValueError(f"unknown fault-plan key {key!r}")
            except ValueError as exc:
                raise ValueError(
                    f"bad fault-plan term {part!r}: {exc}") from None
        return cls(name=name, seed=seed, windows=tuple(windows), **kwargs)


@dataclass
class FaultInjector:
    """Live fault-schedule state for one recording session.

    Owns the transmission counter (which persists across channel
    reconnects, so a resumed session continues the plan's schedule) and
    the seeded backoff jitter stream the channel's retransmission timer
    draws from.
    """

    plan: FaultPlan
    tx_index: int = 0
    _backoff_rng: random.Random = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self._backoff_rng is None:
            self._backoff_rng = random.Random(f"backoff:{self.plan.seed}")

    def next_fate(self) -> TxFate:
        fate = self.plan.fate(self.tx_index)
        self.tx_index += 1
        return fate

    def window_at(self, t: float) -> Optional[DisconnectWindow]:
        return self.plan.window_at(t)

    def backoff_jitter(self) -> float:
        """Uniform [0, 1) draw for the channel's backoff randomization —
        seeded per plan, so retry timing is as deterministic as the
        fault schedule itself."""
        return self._backoff_rng.random()


# The three plan shapes benchmarks/test_resilience.py proves
# byte-identity under.  Window times assume a WiFi-class MNIST record
# run (a few virtual seconds); chaos runs on slower links or larger
# workloads should scale them via explicit specs.
PRESETS = {
    "loss-only": FaultPlan(name="loss-only", loss_p=0.01),
    "disconnect": FaultPlan(name="disconnect",
                            windows=(DisconnectWindow(2.0, 1.5),)),
    "combined": FaultPlan(name="combined", loss_p=0.01, dup_p=0.005,
                          reorder_p=0.002, jitter_p=0.004, jitter_s=0.020,
                          windows=(DisconnectWindow(2.5, 1.0),)),
}
