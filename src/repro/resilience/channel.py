"""Reliable message channel over a faulty WAN link.

:class:`ReliableChannel` wraps a perfect :class:`~repro.sim.network.Link`
and exposes the same interface (``round_trip`` / ``send_to_client`` /
``receive_from_client`` / ``async_round_trip``), plus an ``rpc`` entry
point DriverShim routes commits through.  On top of the link it adds
what a real shim transport needs on a lossy path:

* **per-message timeout + retransmission** with exponential backoff and
  seeded jitter (retry timing is as deterministic as the fault plan);
* **sequence numbers + receiver-side dedup**, so a commit batch or
  memsync transfer delivered twice (injected duplicates, or a
  retransmission racing its "lost" original) is *applied exactly once*
  — the client caches the reply per sequence number and replays it for
  suppressed copies, which is what makes retries idempotent;
* **disconnect detection**: inside a plan's disconnect window, or when
  a message exhausts its retry budget, the channel raises
  :class:`ChannelDisconnected`; the recording session catches it and
  resumes from its last checkpoint (:mod:`repro.resilience.checkpoint`).

Byte-identity discipline
------------------------
The recording must be bit-identical to a fault-free run (§2.3/§6: the
GPU may never observe timing the replayer can't reproduce).  Every
fault-induced delay — timeouts, backoff, jitter, duplicate
serialization — is therefore charged as a *held* advance: the virtual
clock moves (the session really is slower; delay and energy accounting
see it under the ``network-retry`` timeline label) and the GPU's
pending deadlines are shifted by the same amount via the ``hold``
callback (:meth:`~repro.hw.gpu.MaliGpu.shift_events` — GPUShim
clock-gates the GPU during the stall).  Only after all extras are held
does the wrapped link charge its exact fault-free baseline cost, so the
GPU-relative timing of every client operation matches the perfect-link
run.  Asynchronous (speculative) sends charge their extras at send time
and keep the baseline completion time, so validation stalls never leak
unheld delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Set

from repro.obs.metrics import StatsBase
from repro.resilience.faults import FaultInjector
from repro.sim.network import Link, Message

# Timeline label for held fault delays: distinguishable from "network"
# (baseline transfer time) in RecordStats.timeline_by_label.
RETRY_LABEL = "network-retry"

DEFAULT_MAX_RETRIES = 8
# Backoff never grows past this many seconds per attempt.
BACKOFF_CAP_S = 2.0
# Virtual time a supervisor needs to declare the TLS session dead and
# hand the client back to admission control after retries are exhausted.
RECONNECT_COST_S = 1.0


class ChannelDisconnected(RuntimeError):
    """The channel gave up: disconnect window or retry budget exhausted.

    ``resume_at_s`` is the earliest virtual time a reconnect can
    succeed; ``safe_log_position`` is filled in by the record session
    (the channel does not know the log) before the exception is used
    for resume.
    """

    def __init__(self, message: str, resume_at_s: float) -> None:
        super().__init__(message)
        self.resume_at_s = resume_at_s
        self.safe_log_position: Optional[int] = None


@dataclass
class ChannelStats(StatsBase):
    """Reliability-layer counters (link-level ones live in NetworkStats)."""

    SCHEMA = "repro.channel"

    rpcs: int = 0
    duplicates_delivered: int = 0
    duplicates_suppressed: int = 0
    jitter_events: int = 0
    reorder_events: int = 0
    disconnects: int = 0


class ReliableChannel:
    """A Link-shaped reliable transport over an injected-fault link."""

    def __init__(self, link: Link, injector: FaultInjector,
                 hold: Optional[Callable[[float], None]] = None,
                 timeout_s: Optional[float] = None,
                 max_retries: int = DEFAULT_MAX_RETRIES,
                 tracer=None) -> None:
        self.link = link
        self.injector = injector
        self.hold = hold if hold is not None else (lambda dt: None)
        self.clock = link.clock
        self.profile = link.profile
        # Shared with the wrapped link: one NetworkStats per session,
        # retry counters folded in alongside the baseline traffic.
        self.stats = link.stats
        self.timeout_s = (timeout_s if timeout_s is not None
                          else max(4.0 * link.profile.rtt_s, 0.050))
        self.max_retries = max_retries
        self.cstats = ChannelStats()
        # Optional repro.obs.Tracer: retry/duplicate/disconnect instants
        # under cat "resilience".  Held delays are spans of virtual time
        # already labeled RETRY_LABEL on the clock timeline, so instants
        # (not spans) are the right shape here.
        self.tracer = tracer
        self._next_seq = 0
        self._delivered: Set[int] = set()
        self._replies: Dict[int, Any] = {}

    # ------------------------------------------------------------------
    # Held charging: the GPU never observes fault-induced delays.
    # ------------------------------------------------------------------
    def _charge_held(self, seconds: float) -> None:
        if seconds <= 0:
            return
        self.clock.advance(seconds, label=RETRY_LABEL)
        self.stats.time_blocked_s += seconds
        self.hold(seconds)

    def _backoff_s(self, attempt: int) -> float:
        base = min(self.timeout_s * (2.0 ** (attempt - 1)), BACKOFF_CAP_S)
        return base * (0.5 + 0.5 * self.injector.backoff_jitter())

    def _check_connected(self) -> None:
        window = self.injector.window_at(self.clock.now)
        if window is not None:
            self.cstats.disconnects += 1
            if self.tracer is not None:
                self.tracer.event("disconnect", cat="resilience",
                                  args={"reason": "window",
                                        "resume_at_s": window.end_s})
            raise ChannelDisconnected(
                f"link down: disconnect window [{window.start_s:g}, "
                f"{window.end_s:g}) at t={self.clock.now:.3f}",
                resume_at_s=window.end_s)

    # ------------------------------------------------------------------
    # Receiver-side dedup: exactly-once application.
    # ------------------------------------------------------------------
    def _deliver(self, seq: int, apply: Optional[Callable[[], Any]]):
        if seq in self._delivered:
            self.cstats.duplicates_suppressed += 1
            return self._replies.get(seq)
        result = apply() if apply is not None else None
        self._delivered.add(seq)
        self._replies[seq] = result
        return result

    # ------------------------------------------------------------------
    # The reliable request/response primitive.
    # ------------------------------------------------------------------
    def rpc(self, request: Message, response: Message,
            apply: Optional[Callable[[], Any]] = None):
        """Deliver ``request``, apply it exactly once, return the reply.

        ``apply`` is the receiver's handler (e.g. GPUShim applying a
        commit); duplicates replay the cached reply instead.
        """
        self.cstats.rpcs += 1
        seq = self._next_seq
        self._next_seq += 1
        attempt = 0
        while True:
            self._check_connected()
            fate = self.injector.next_fate()
            if fate.lost:
                attempt += 1
                self.stats.timeouts += 1
                self.stats.redundant_bytes += request.wire_bytes
                if attempt > self.max_retries:
                    self.cstats.disconnects += 1
                    if self.tracer is not None:
                        self.tracer.event(
                            "disconnect", cat="resilience",
                            args={"reason": "retry-budget", "seq": seq,
                                  "attempts": attempt})
                    raise ChannelDisconnected(
                        f"seq {seq}: {attempt} transmissions lost, retry "
                        f"budget ({self.max_retries}) exhausted",
                        resume_at_s=self.clock.now + RECONNECT_COST_S)
                self.stats.retries += 1
                if self.tracer is not None:
                    self.tracer.event("retry", cat="resilience",
                                      args={"seq": seq, "attempt": attempt,
                                            "kind": request.kind})
                self._charge_held(self.timeout_s + self._backoff_s(attempt))
                continue
            extra = fate.jitter_s
            if fate.jitter_s > 0:
                self.cstats.jitter_events += 1
            if fate.reordered:
                # Alternating request/response traffic: delivery behind a
                # later datagram costs one extra propagation delay.
                self.cstats.reorder_events += 1
                extra += self.profile.one_way_s
            self._charge_held(extra)
            # Baseline delivery: exactly the perfect link's charge.
            self.link.round_trip(request, response)
            result = self._deliver(seq, apply)
            if fate.duplicated:
                self.stats.redundant_bytes += request.wire_bytes
                self.cstats.duplicates_delivered += 1
                if self.tracer is not None:
                    self.tracer.event("duplicate", cat="resilience",
                                      args={"seq": seq,
                                            "kind": request.kind})
                self._charge_held(self.profile.serialize_s(request.wire_bytes))
                self._deliver(seq, apply)
            return result

    # ------------------------------------------------------------------
    # Link interface (duck-typed drop-in for sim.network.Link).
    # ------------------------------------------------------------------
    def round_trip(self, request: Message, response: Message) -> float:
        self.rpc(request, response, None)
        return 0.0

    def _survive_one_way(self, message: Message) -> None:
        """Retry a one-way transfer until a copy gets through; charge all
        extras held, leaving the baseline cost to the wrapped link."""
        attempt = 0
        while True:
            self._check_connected()
            fate = self.injector.next_fate()
            if fate.lost:
                attempt += 1
                self.stats.timeouts += 1
                self.stats.redundant_bytes += message.wire_bytes
                if attempt > self.max_retries:
                    self.cstats.disconnects += 1
                    if self.tracer is not None:
                        self.tracer.event(
                            "disconnect", cat="resilience",
                            args={"reason": "retry-budget",
                                  "kind": message.kind,
                                  "attempts": attempt})
                    raise ChannelDisconnected(
                        f"one-way {message.kind!r}: {attempt} transmissions "
                        f"lost, retry budget exhausted",
                        resume_at_s=self.clock.now + RECONNECT_COST_S)
                self.stats.retries += 1
                if self.tracer is not None:
                    self.tracer.event("retry", cat="resilience",
                                      args={"attempt": attempt,
                                            "kind": message.kind})
                self._charge_held(self.timeout_s + self._backoff_s(attempt))
                continue
            extra = fate.jitter_s
            if fate.jitter_s > 0:
                self.cstats.jitter_events += 1
            if fate.reordered:
                self.cstats.reorder_events += 1
                extra += self.profile.one_way_s
            if fate.duplicated:
                self.stats.redundant_bytes += message.wire_bytes
                self.cstats.duplicates_delivered += 1
                self.cstats.duplicates_suppressed += 1
                if self.tracer is not None:
                    self.tracer.event("duplicate", cat="resilience",
                                      args={"kind": message.kind})
                extra += self.profile.serialize_s(message.wire_bytes)
            self._charge_held(extra)
            return

    def send_to_client(self, message: Message, blocking: bool = True) -> float:
        self._survive_one_way(message)
        return self.link.send_to_client(message, blocking=blocking)

    def receive_from_client(self, message: Message) -> float:
        self._survive_one_way(message)
        return self.link.receive_from_client(message)

    def async_round_trip(self, request: Message, response: Message) -> float:
        """Speculative send: extras are charged (held) *now*; the
        completion time stays at the fault-free baseline so validation
        stalls (`advance_to(completion)`) never leak unheld delay."""
        self._survive_one_way(request)
        return self.link.async_round_trip(request, response)
