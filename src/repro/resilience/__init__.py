"""repro.resilience — surviving the WAN the paper assumes is flaky.

GR-T's setting is a cloud-resident driver talking to a client TEE over
mobile links (§3.3, §7.2); this package makes recording sessions survive
injected link faults and proves the resulting recordings are
byte-identical to fault-free runs:

* :mod:`repro.resilience.faults` — deterministic, seeded fault plans
  (loss, jitter spikes, duplicate/reorder, disconnect windows) composed
  onto any :class:`~repro.sim.network.LinkProfile`;
* :mod:`repro.resilience.channel` — a reliable message channel over the
  faulty link: per-message timeout, exponential backoff with seeded
  jitter, sequence numbers + dedup so commits and memsync transfers are
  idempotent under retry; every fault delay is charged while the GPU is
  clock-gated (held), keeping recordings bit-stable;
* :mod:`repro.resilience.checkpoint` — recording-session checkpoints at
  commit-log watermarks (commit index + memsync digest + speculation-
  history snapshot); the resume path reuses the §4.2 misprediction
  replay machinery to continue after a mid-session disconnect;
* :mod:`repro.resilience.failover` — fleet integration: dead VMs and
  retry-exhausted sessions re-enter admission control and resume from
  their checkpoint on a warm VM;
* :mod:`repro.resilience.experiment` — the chaos experiment behind
  ``python -m repro chaos``.

The experiment and failover modules import the recorder/fleet layers,
which in turn import this package's channel/checkpoint modules — so
those two are exposed lazily (PEP 562) to keep module import acyclic.
"""

from repro.resilience.channel import (
    ChannelDisconnected,
    ChannelStats,
    ReliableChannel,
    RETRY_LABEL,
)
from repro.resilience.checkpoint import (
    CheckpointIntegrityError,
    RecordingCheckpoint,
    SessionCheckpointer,
    log_prefix_digest,
    memsync_view_digest,
)
from repro.resilience.faults import (
    DisconnectWindow,
    FaultInjector,
    FaultPlan,
    PRESETS,
    TxFate,
)

_LAZY = {
    "ChaosReport": "repro.resilience.experiment",
    "ChaosRunResult": "repro.resilience.experiment",
    "DEFAULT_PLANS": "repro.resilience.experiment",
    "resolve_plans": "repro.resilience.experiment",
    "run_chaos_experiment": "repro.resilience.experiment",
    "FleetFaultPlan": "repro.resilience.failover",
    "ResilientFleetSimulation": "repro.resilience.failover",
    "run_resilient_fleet": "repro.resilience.failover",
}


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(target), name)


__all__ = [
    "ChannelDisconnected",
    "ChannelStats",
    "ChaosReport",
    "ChaosRunResult",
    "CheckpointIntegrityError",
    "DEFAULT_PLANS",
    "DisconnectWindow",
    "FaultInjector",
    "FaultPlan",
    "FleetFaultPlan",
    "PRESETS",
    "RETRY_LABEL",
    "RecordingCheckpoint",
    "ReliableChannel",
    "ResilientFleetSimulation",
    "SessionCheckpointer",
    "TxFate",
    "log_prefix_digest",
    "memsync_view_digest",
    "resolve_plans",
    "run_chaos_experiment",
    "run_resilient_fleet",
]
