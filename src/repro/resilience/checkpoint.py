"""Recording-session checkpoints at commit-log watermarks.

GPUReplay and Minimum Viable Drivers both lean on *replay from a known
point* as the recovery primitive; GR-T's misprediction rollback (§4.2)
already is one.  A :class:`RecordingCheckpoint` packages everything a
(possibly different) cloud VM needs to continue a recording after a
mid-session disconnect instead of restarting it:

* the **commit-log watermark** — the last validated log position and
  the entry prefix up to it (the part of the recording that is final);
* a **log digest** over the encoded prefix, verified before any resume
  replays it (a corrupted checkpoint must fail loudly, not produce a
  recording that diverges from the fault-free one);
* a **memsync digest** of the synchronizer's view of client memory at
  the watermark (what §5's meta-only sync believes the client holds);
* a **speculation-history snapshot** (§4.2) — commit history lives in
  the cloud VM and dies with it, so the checkpoint carries it; a
  resumed session restores it and follows exactly the history
  trajectory the fault-free run had at that position.

Checkpoints are captured at memory-sync boundaries (the job-start push
and the post-IRQ pull, §5) but only at *quiescent* watermarks: no
outstanding speculative commits, no deferred accesses queued, watermark
equal to the shim's validated position.  Those are the checkpoint
invariants :class:`~repro.check.specsan.SpecSan` enforces via
``on_checkpoint``.  Non-quiescent boundaries are skipped and counted.

The resume path reuses the misprediction machinery unchanged: the
session feeds the checkpoint prefix to
:class:`~repro.core.drivershim.FastForwardFeed` while the client
replays the same prefix onto its reset GPU (§4.2), then live execution
continues from the watermark.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.recording import Entry, _encode_entry


class CheckpointIntegrityError(RuntimeError):
    """A checkpoint failed its digest check at resume time."""


def log_prefix_digest(entries: Tuple[Entry, ...]) -> str:
    """SHA-256 over the serialized entry prefix (the recording bytes the
    watermark makes final)."""
    h = hashlib.sha256()
    for entry in entries:
        h.update(_encode_entry(entry))
    return h.hexdigest()


def memsync_view_digest(memsync) -> str:
    """SHA-256 over the synchronizer's view of client memory."""
    h = hashlib.sha256()
    for pfn in sorted(memsync.peer_pfns()):
        h.update(pfn.to_bytes(8, "little"))
        h.update(memsync.peer_page(pfn))
    return h.hexdigest()


@dataclass(frozen=True)
class RecordingCheckpoint:
    """Everything needed to continue a recording from a watermark."""

    position: int
    entries: Tuple[Entry, ...]
    log_digest: str
    memsync_digest: str
    history: Dict[Tuple, Tuple[Tuple, ...]]
    created_at: float
    trigger: str

    def verify(self) -> None:
        """Recompute the prefix digest; raise on mismatch."""
        actual = log_prefix_digest(self.entries)
        if actual != self.log_digest:
            raise CheckpointIntegrityError(
                f"checkpoint at position {self.position} corrupt: prefix "
                f"digest {actual[:12]} != recorded {self.log_digest[:12]}")
        if self.position != len(self.entries):
            raise CheckpointIntegrityError(
                f"checkpoint watermark {self.position} does not match its "
                f"{len(self.entries)}-entry prefix")


@dataclass
class SessionCheckpointer:
    """Captures checkpoints at quiescent memsync watermarks.

    Installed on a DriverShim (``shim.checkpointer``); the shim calls
    :meth:`on_watermark` after every memory-sync boundary.  ``sanitizer``
    (a :class:`~repro.check.specsan.SpecSan`) is notified of every
    capture so the checkpoint invariants are asserted on a live run.
    """

    sanitizer: Optional[object] = None
    checkpoints: List[RecordingCheckpoint] = field(default_factory=list)
    captures: int = 0
    skipped_busy: int = 0
    skipped_no_progress: int = 0

    # ------------------------------------------------------------------
    def on_watermark(self, shim, trigger: str) -> Optional[RecordingCheckpoint]:
        if shim.ff_active:
            return None  # fast-forwarding over an already-final prefix
        if shim._outstanding or any(len(q) for q in shim._queues.values()):
            # Not quiescent: the watermark would trail in-flight state.
            self.skipped_busy += 1
            return None
        position = shim.last_validated_position
        if position == 0 or (self.checkpoints
                             and position <= self.checkpoints[-1].position):
            self.skipped_no_progress += 1
            return None
        entries = tuple(shim.gpushim.log[:position])
        checkpoint = RecordingCheckpoint(
            position=position,
            entries=entries,
            log_digest=log_prefix_digest(entries),
            memsync_digest=memsync_view_digest(shim.memsync),
            history=shim.history.snapshot(),
            created_at=shim.link.clock.now,
            trigger=trigger,
        )
        self.checkpoints.append(checkpoint)
        self.captures += 1
        if self.sanitizer is not None:
            self.sanitizer.on_checkpoint(shim, checkpoint)
        return checkpoint

    # ------------------------------------------------------------------
    def latest(self) -> Optional[RecordingCheckpoint]:
        return self.checkpoints[-1] if self.checkpoints else None

    def resume_prefix(self) -> List[Entry]:
        """The verified entry prefix a resumed attempt replays from
        (empty when no checkpoint was captured: restart from scratch)."""
        checkpoint = self.latest()
        if checkpoint is None:
            return []
        checkpoint.verify()
        return list(checkpoint.entries)
