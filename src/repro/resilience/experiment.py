"""The chaos experiment: prove recordings survive WAN faults unchanged.

For one (workload, recorder, link, seed) the experiment:

1. warms the speculation history (§4.2) and snapshots it, so the
   baseline and every faulty run start from the *same* history state;
2. records once over the perfect link — the baseline recording;
3. records once per fault plan over the faulty link, with the reliable
   channel, checkpoints and the resume path active;
4. compares every faulty recording byte-for-byte against the baseline
   and reports the recording-delay overhead plus the channel's
   retry/dedup/resume counters.

Byte-identity is the paper's determinism requirement (§2.3/§6) extended
to link faults: the replayer reproduces the recording's exact stimulus
timing, so a recording whose bytes depend on the weather of the WAN
would be unreplayable.  ``python -m repro chaos`` is a thin CLI over
:func:`run_chaos_experiment`; ``benchmarks/test_resilience.py`` asserts
the identity under the three preset plan shapes.

Imports from :mod:`repro.core` happen inside the functions: the core
recorder imports this package's channel/checkpoint modules, so the
experiment layer must not import the recorder at module import time.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.resilience.faults import FaultPlan, PRESETS

DEFAULT_PLANS = ("loss-only", "disconnect", "combined")


@dataclass
class ChaosRunResult:
    """One faulty record run compared against the fault-free baseline."""

    plan: str
    spec: str
    plan_seed: int
    delay_s: float
    overhead_pct: float
    identical: bool
    sha256: str
    resumes: int
    checkpoints: int
    retries: int
    timeouts: int
    redundant_bytes: int
    retry_wait_s: float
    disconnect_wait_s: float


@dataclass
class ChaosReport:
    """Everything ``python -m repro chaos`` prints or writes as JSON."""

    workload: str
    recorder: str
    link: str
    seed: int
    warm_rounds: int
    baseline_delay_s: float
    baseline_bytes: int
    baseline_sha256: str
    runs: List[ChaosRunResult] = field(default_factory=list)

    @property
    def all_identical(self) -> bool:
        return all(r.identical for r in self.runs)

    def summary(self) -> Dict:
        return {
            "workload": self.workload,
            "recorder": self.recorder,
            "link": self.link,
            "config": {"seed": self.seed, "warm_rounds": self.warm_rounds},
            "baseline": {
                "delay_s": round(self.baseline_delay_s, 9),
                "recording_bytes": self.baseline_bytes,
                "sha256": self.baseline_sha256,
            },
            "all_identical": self.all_identical,
            "plans": [
                {
                    "plan": r.plan,
                    "spec": r.spec,
                    "seed": r.plan_seed,
                    "delay_s": round(r.delay_s, 9),
                    "overhead_pct": round(r.overhead_pct, 6),
                    "identical": r.identical,
                    "sha256": r.sha256,
                    "resumes": r.resumes,
                    "checkpoints": r.checkpoints,
                    "retries": r.retries,
                    "timeouts": r.timeouts,
                    "redundant_bytes": r.redundant_bytes,
                    "retry_wait_s": round(r.retry_wait_s, 9),
                    "disconnect_wait_s": round(r.disconnect_wait_s, 9),
                }
                for r in self.runs
            ],
        }


def resolve_plans(specs: Sequence[Union[str, FaultPlan]],
                  seed: int = 0) -> List[FaultPlan]:
    """Normalize preset names / spec strings / plans into seeded plans."""
    plans = []
    for i, spec in enumerate(specs):
        if isinstance(spec, FaultPlan):
            plans.append(spec)
        else:
            name = spec if spec in PRESETS else f"custom-{i}"
            plans.append(FaultPlan.parse(spec, name=name, seed=seed))
    return plans


def run_chaos_experiment(
        workload: str = "mnist",
        recorder=None,
        link=None,
        plans: Optional[Sequence[Union[str, FaultPlan]]] = None,
        seed: int = 0,
        warm_rounds: int = 1,
        sanitize: bool = False,
        tracer=None) -> ChaosReport:
    """Record under every fault plan; compare against the baseline.

    ``tracer`` (a :class:`repro.obs.Tracer`) observes the *faulty* record
    runs — where the retries, disconnects and resumes happen; warm-up and
    the fault-free baseline stay untraced so the trace isolates fault
    handling.
    """
    from repro.core.recorder import OURS_MDS, RecordSession
    from repro.core.speculation import CommitHistory

    if recorder is None:
        recorder = OURS_MDS
    if link is None:
        from repro.sim.network import WIFI
        link = WIFI
    plan_list = resolve_plans(plans if plans is not None else DEFAULT_PLANS,
                              seed=seed)

    warm = CommitHistory(recorder.spec_window)
    for _ in range(warm_rounds):
        RecordSession(workload, config=recorder, link_profile=link,
                      seed=seed, history=warm).run()
    history_snapshot = warm.snapshot()

    def fresh_history() -> CommitHistory:
        h = CommitHistory(recorder.spec_window)
        h.restore(history_snapshot)
        return h

    def make_sanitizer():
        if not sanitize:
            return None
        from repro.check.specsan import SpecSan
        return SpecSan(strict=True)

    baseline = RecordSession(workload, config=recorder, link_profile=link,
                             seed=seed, history=fresh_history(),
                             sanitizer=make_sanitizer()).run()
    baseline_body = baseline.recording.body_bytes()
    baseline_sha = hashlib.sha256(baseline_body).hexdigest()
    report = ChaosReport(
        workload=workload, recorder=recorder.name, link=link.name,
        seed=seed, warm_rounds=warm_rounds,
        baseline_delay_s=baseline.stats.recording_delay_s,
        baseline_bytes=len(baseline_body),
        baseline_sha256=baseline_sha)

    for plan in plan_list:
        session = RecordSession(workload, config=recorder, link_profile=link,
                                seed=seed, history=fresh_history(),
                                fault_plan=plan,
                                sanitizer=make_sanitizer(),
                                tracer=tracer)
        result = session.run()
        body = result.recording.body_bytes()
        stats = result.stats
        base_delay = baseline.stats.recording_delay_s
        labels = stats.timeline_by_label
        report.runs.append(ChaosRunResult(
            plan=plan.name,
            spec=plan.spec(),
            plan_seed=plan.seed,
            delay_s=stats.recording_delay_s,
            overhead_pct=(100.0 * (stats.recording_delay_s - base_delay)
                          / base_delay if base_delay else 0.0),
            identical=body == baseline_body,
            sha256=hashlib.sha256(body).hexdigest(),
            resumes=stats.resumes,
            checkpoints=stats.checkpoints,
            retries=stats.net_retries,
            timeouts=stats.net_timeouts,
            redundant_bytes=stats.redundant_bytes,
            retry_wait_s=labels.get("network-retry", 0.0),
            disconnect_wait_s=labels.get("disconnect", 0.0),
        ))
    return report
