"""Static NN inference graphs.

A :class:`Graph` is a topologically ordered list of named nodes.  Static
graphs — no data-dependent control flow between jobs — are the property
input independence rests on (§2.3): a single record run exercises every
GPU job the workload will ever issue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.ml.layers import Layer, Shape

INPUT = "input"


class GraphError(ValueError):
    """Malformed graph (unknown input, cycle, shape mismatch, ...)."""


@dataclass
class Node:
    """One layer instance in a graph."""

    name: str
    layer: Layer
    inputs: List[str]
    out_shape: Shape = ()
    # Multiplier applied to this node's FLOPs by the GPU duration model;
    # compensates for spatially downscaled model definitions (DESIGN.md).
    flops_scale: float = 1.0


@dataclass
class Graph:
    """A named workload: input shape plus an ordered node list."""

    name: str
    input_shape: Shape
    nodes: List[Node] = field(default_factory=list)

    def add(self, name: str, layer: Layer, inputs: Sequence[str],
            flops_scale: float = 1.0) -> Node:
        if any(n.name == name for n in self.nodes):
            raise GraphError(f"duplicate node name {name!r}")
        node = Node(name=name, layer=layer, inputs=list(inputs),
                    flops_scale=flops_scale)
        node.out_shape = layer.infer_shape(
            [self.shape_of(i) for i in node.inputs])
        self.nodes.append(node)
        return node

    def shape_of(self, name: str) -> Shape:
        if name == INPUT:
            return self.input_shape
        for node in self.nodes:
            if node.name == name:
                return node.out_shape
        raise GraphError(f"node {name!r} referenced before definition")

    @property
    def output(self) -> Node:
        if not self.nodes:
            raise GraphError("empty graph")
        return self.nodes[-1]

    @property
    def output_shape(self) -> Shape:
        return self.output.out_shape

    def validate(self) -> None:
        """Re-check referential integrity and shapes (cheap invariants)."""
        seen = {INPUT}
        for node in self.nodes:
            for inp in node.inputs:
                if inp not in seen:
                    raise GraphError(
                        f"node {node.name!r} uses undefined input {inp!r}")
            expected = node.layer.infer_shape(
                [self.shape_of(i) for i in node.inputs])
            if node.out_shape != expected:
                raise GraphError(
                    f"node {node.name!r} shape drifted: {node.out_shape} "
                    f"!= {expected}")
            seen.add(node.name)

    # ------------------------------------------------------------------
    # Static summaries used by DESIGN/benchmarks
    # ------------------------------------------------------------------
    def total_flops(self) -> float:
        return sum(
            node.layer.flops([self.shape_of(i) for i in node.inputs])
            * node.flops_scale
            for node in self.nodes
        )

    def total_params(self) -> int:
        return sum(
            node.layer.param_count([self.shape_of(i) for i in node.inputs])
            for node in self.nodes
        )

    def node_by_name(self, name: str) -> Node:
        for node in self.nodes:
            if node.name == name:
                return node
        raise GraphError(f"no node named {name!r}")
