"""Lowering NN graphs onto the GPU runtime, plus the data manifest.

The runner is the part of the "app + framework" that GR-T dry-runs.  It
allocates GPU buffers, initializes weights, and walks the static graph
emitting one or more GPU jobs per layer (a staging/im2col job plus the
compute job, with wide convolutions tiled into channel groups — the same
multi-kernel-per-layer structure ACL exhibits).

The :class:`RunManifest` it produces records where every *data* tensor
lives (input, output, weights).  During recording those buffers hold
zeros (§5: the dry run fills inputs and parameters as zeros); at replay
the TEE uses the manifest to inject real weights and input into the
recorded addresses and to fetch the output (§2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.hw.memory import align_up
from repro.ml import layers as L
from repro.ml.graph import Graph, INPUT, Node
from repro.runtime.api import BufferSlice, GpuContext
from repro.runtime.allocator import Buffer


@dataclass(frozen=True)
class DataBinding:
    """Where one named data tensor lives in GPU memory."""

    name: str
    kind: str  # "input" | "output" | "weight" | "bias"
    va: int
    pa: int
    size: int
    shape: Tuple[int, ...]

    def to_dict(self) -> Dict:
        return {
            "name": self.name, "kind": self.kind, "va": self.va,
            "pa": self.pa, "size": self.size, "shape": list(self.shape),
        }

    @staticmethod
    def from_dict(doc: Dict) -> "DataBinding":
        return DataBinding(name=doc["name"], kind=doc["kind"], va=doc["va"],
                           pa=doc["pa"], size=doc["size"],
                           shape=tuple(doc["shape"]))


@dataclass
class RunManifest:
    """Recording metadata: workload identity + data bindings + layout."""

    workload: str
    input_shape: Tuple[int, ...]
    output_shape: Tuple[int, ...]
    bindings: List[DataBinding] = field(default_factory=list)
    jobs_per_node: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def total_jobs(self) -> int:
        return sum(n for _, n in self.jobs_per_node)

    def binding(self, name: str) -> DataBinding:
        for b in self.bindings:
            if b.name == name:
                return b
        raise KeyError(f"no binding named {name!r}")

    def weight_bindings(self) -> List[DataBinding]:
        return [b for b in self.bindings if b.kind in ("weight", "bias")]

    def to_dict(self) -> Dict:
        return {
            "workload": self.workload,
            "input_shape": list(self.input_shape),
            "output_shape": list(self.output_shape),
            "bindings": [b.to_dict() for b in self.bindings],
            "jobs_per_node": [[n, c] for n, c in self.jobs_per_node],
        }

    @staticmethod
    def from_dict(doc: Dict) -> "RunManifest":
        return RunManifest(
            workload=doc["workload"],
            input_shape=tuple(doc["input_shape"]),
            output_shape=tuple(doc["output_shape"]),
            bindings=[DataBinding.from_dict(b) for b in doc["bindings"]],
            jobs_per_node=[(n, c) for n, c in doc["jobs_per_node"]],
        )


def weight_base_name(node) -> str:
    """Weight/bias buffer name prefix; tied layers share one (§2.3's
    unrolled RNNs reuse cell weights at every timestep)."""
    tie = getattr(node.layer, "tie", None)
    return tie if tie else node.name


def _nbytes(shape: Sequence[int]) -> int:
    n = 4
    for d in shape:
        n *= d
    return n


def generate_weights(graph: Graph, seed: int = 0) -> Dict[str, np.ndarray]:
    """Deterministic He-initialized weights for every parametric node.

    Used both by the native runner and by the TEE at replay time (the
    "model parameters" that never leave the TEE, §7.1).
    """
    rng = np.random.RandomState(seed)
    out: Dict[str, np.ndarray] = {}
    for node in graph.nodes:
        in_shapes = [graph.shape_of(i) for i in node.inputs]
        w_shape = node.layer.weight_shape(in_shapes)
        b_shape = node.layer.bias_shape(in_shapes)
        if w_shape is None:
            continue
        base = weight_base_name(node)
        if f"{base}.weight" in out:
            # Tied weights: all users must agree on the shape.
            if out[f"{base}.weight"].shape != tuple(w_shape):
                raise ValueError(
                    f"tied weights {base!r} used with conflicting shapes")
            continue
        if isinstance(node.layer, L.BatchNorm):
            out[f"{base}.weight"] = (
                1.0 + 0.05 * rng.randn(*w_shape)).astype(np.float32)
            out[f"{base}.bias"] = (
                0.05 * rng.randn(*b_shape)).astype(np.float32)
            continue
        fan_in = 1
        for d in w_shape[1:]:
            fan_in *= d
        std = float(np.sqrt(2.0 / max(fan_in, 1)))
        out[f"{base}.weight"] = (
            std * rng.randn(*w_shape)).astype(np.float32)
        if b_shape is not None:
            out[f"{base}.bias"] = (
                0.01 * rng.randn(*b_shape)).astype(np.float32)
    return out


def required_memory_bytes(graph: Graph) -> int:
    """Conservative estimate of the GPU carveout a workload needs."""
    total = 8 << 20  # shader + command zones + page tables
    total += align_up(_nbytes(graph.input_shape))
    for node in graph.nodes:
        in_shapes = [graph.shape_of(i) for i in node.inputs]
        total += align_up(_nbytes(node.out_shape))
        if isinstance(node.layer, (L.Conv2D, L.DWConv2D, L.Dense)):
            total += align_up(_nbytes(in_shapes[0]))  # staging
        total += align_up(4 * node.layer.param_count(in_shapes) + 8)
    return align_up(total, 1 << 20) + (16 << 20)


class WorkloadRunner:
    """Executes one graph on one GPU context, job by job."""

    def __init__(self, ctx: GpuContext, graph: Graph, seed: int = 0) -> None:
        self.ctx = ctx
        self.graph = graph
        self.seed = seed
        self._buffers: Dict[str, Buffer] = {}
        self.manifest = RunManifest(
            workload=graph.name,
            input_shape=graph.input_shape,
            output_shape=graph.output_shape,
        )
        self._jobs_this_node = 0
        self._allocate()

    # ------------------------------------------------------------------
    # Allocation + weight upload
    # ------------------------------------------------------------------
    def _alloc(self, name: str, size: int) -> Buffer:
        buf = self.ctx.alloc_data(name, size)
        self._buffers[name] = buf
        return buf

    def _allocate(self) -> None:
        g = self.graph
        inp = self._alloc("input", _nbytes(g.input_shape))
        self.manifest.bindings.append(DataBinding(
            "input", "input", inp.va, inp.pa,
            _nbytes(g.input_shape), g.input_shape))
        for node in g.nodes:
            in_shapes = [g.shape_of(i) for i in node.inputs]
            out = self._alloc(f"{node.name}.out", _nbytes(node.out_shape))
            # Activation bindings let segmented replay (Figure 2) fetch
            # intermediate tensors at layer boundaries.
            self.manifest.bindings.append(DataBinding(
                f"{node.name}.out", "activation", out.va, out.pa,
                _nbytes(node.out_shape), node.out_shape))
            if isinstance(node.layer, (L.Conv2D, L.DWConv2D, L.Dense)):
                self._alloc(f"{node.name}.stage", _nbytes(in_shapes[0]))
            base = weight_base_name(node)
            w_shape = node.layer.weight_shape(in_shapes)
            if w_shape is not None and f"{base}.weight" not in self._buffers:
                wbuf = self._alloc(f"{base}.weight", _nbytes(w_shape))
                self.manifest.bindings.append(DataBinding(
                    f"{base}.weight", "weight", wbuf.va, wbuf.pa,
                    _nbytes(w_shape), w_shape))
            b_shape = node.layer.bias_shape(in_shapes)
            if b_shape is not None and f"{base}.bias" not in self._buffers:
                bbuf = self._alloc(f"{base}.bias", _nbytes(b_shape))
                self.manifest.bindings.append(DataBinding(
                    f"{base}.bias", "bias", bbuf.va, bbuf.pa,
                    _nbytes(b_shape), b_shape))
        out = self._buffers[f"{g.output.name}.out"]
        self.manifest.bindings.append(DataBinding(
            "output", "output", out.va, out.pa,
            _nbytes(g.output_shape), g.output_shape))

    def load_weights(self, weights: Optional[Dict[str, np.ndarray]]) -> None:
        """Upload real weights (native) or leave buffers zeroed (dry run)."""
        if weights is None:
            return
        for name, array in weights.items():
            if name not in self._buffers:
                raise KeyError(f"weights contain unknown tensor {name!r}")
            self.ctx.upload(self._buffers[name], array)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, input_array: Optional[np.ndarray] = None,
            node_callback: Optional[Callable[[int, str], None]] = None
            ) -> np.ndarray:
        g = self.graph
        if input_array is not None:
            if tuple(input_array.shape) != tuple(g.input_shape):
                raise ValueError(
                    f"input shape {input_array.shape} != {g.input_shape}")
            self.ctx.upload(self._buffers["input"], input_array)
        self.manifest.jobs_per_node = []
        for index, node in enumerate(g.nodes):
            if node_callback is not None:
                node_callback(index, node.name)
            self._jobs_this_node = 0
            self._lower(node)
            self.manifest.jobs_per_node.append(
                (node.name, self._jobs_this_node))
        return self.ctx.download(self._buffers[f"{g.output.name}.out"],
                                 g.output_shape)

    def output(self) -> np.ndarray:
        return self.ctx.download(self._buffers[f"{self.graph.output.name}.out"],
                                 self.graph.output_shape)

    # ------------------------------------------------------------------
    def _in_buf(self, name: str) -> Buffer:
        return self._buffers["input" if name == INPUT else f"{name}.out"]

    def _enqueue(self, *args, **kwargs) -> None:
        self._jobs_this_node += 1
        self.ctx.enqueue(*args, **kwargs)

    def _stage(self, node: Node, in_shape) -> Buffer:
        """The staging copy job every conv/dense layer starts with."""
        src = self._in_buf(node.inputs[0])
        stage = self._buffers[f"{node.name}.stage"]
        n = _nbytes(in_shape) // 4
        self._enqueue(
            "copy",
            {"shape": [n], "model_flops": n * node.flops_scale},
            inputs=[BufferSlice(src, 0, n * 4)],
            outputs=[BufferSlice(stage, 0, n * 4)],
            cache_key=f"copy:{n}",
        )
        return stage

    def _lower(self, node: Node) -> None:
        g = self.graph
        layer = node.layer
        in_shapes = [g.shape_of(i) for i in node.inputs]
        out_buf = self._buffers[f"{node.name}.out"]
        base_flops = layer.flops(in_shapes) * node.flops_scale

        if isinstance(layer, L.Conv2D):
            self._lower_conv(node, layer, in_shapes[0], out_buf, base_flops)
        elif isinstance(layer, L.DWConv2D):
            stage = self._stage(node, in_shapes[0])
            c, kh, kw = layer.weight_shape(in_shapes)
            self._enqueue(
                "dwconv2d",
                {"in_shape": list(in_shapes[0]), "w_shape": [c, kh, kw],
                 "out_shape": list(node.out_shape), "kernel": [kh, kw],
                 "stride": layer.stride, "pad": layer.pad,
                 "activation": layer.activation, "model_flops": base_flops},
                inputs=[stage],
                weights=[self._buffers[f"{node.name}.weight"]],
                biases=[self._buffers[f"{node.name}.bias"]],
                outputs=[BufferSlice(out_buf, 0, _nbytes(node.out_shape))],
                cache_key=f"dw:{node.name}",
            )
        elif isinstance(layer, L.Dense):
            stage = self._stage(node, in_shapes[0])
            in_features = _nbytes(in_shapes[0]) // 4
            base = weight_base_name(node)
            self._enqueue(
                "dense",
                {"in_features": in_features,
                 "out_features": layer.out_features,
                 "activation": layer.activation, "model_flops": base_flops},
                inputs=[BufferSlice(stage, 0, in_features * 4)],
                weights=[self._buffers[f"{base}.weight"]],
                biases=[self._buffers[f"{base}.bias"]],
                outputs=[BufferSlice(out_buf, 0, layer.out_features * 4)],
                cache_key=f"dense:{base}:{in_features}",
            )
        elif isinstance(layer, (L.MaxPool, L.AvgPool)):
            op = "avgpool" if isinstance(layer, L.AvgPool) else "maxpool"
            self._enqueue(
                op,
                {"in_shape": list(in_shapes[0]),
                 "out_shape": list(node.out_shape),
                 "kernel": list(layer.kernel), "stride": layer.stride,
                 "pad": layer.pad, "model_flops": base_flops},
                inputs=[BufferSlice(self._in_buf(node.inputs[0]), 0,
                                    _nbytes(in_shapes[0]))],
                outputs=[BufferSlice(out_buf, 0, _nbytes(node.out_shape))],
                cache_key=f"pool:{node.name}",
            )
        elif isinstance(layer, L.GlobalAvgPool):
            self._enqueue(
                "globalpool",
                {"in_shape": list(in_shapes[0]), "model_flops": base_flops},
                inputs=[BufferSlice(self._in_buf(node.inputs[0]), 0,
                                    _nbytes(in_shapes[0]))],
                outputs=[BufferSlice(out_buf, 0, _nbytes(node.out_shape))],
                cache_key=f"gap:{node.name}",
            )
        elif isinstance(layer, L.Activation):
            n = _nbytes(in_shapes[0]) // 4
            self._enqueue(
                layer.kind, {"shape": [n], "model_flops": base_flops},
                inputs=[BufferSlice(self._in_buf(node.inputs[0]), 0, n * 4)],
                outputs=[BufferSlice(out_buf, 0, n * 4)],
                cache_key=f"{layer.kind}:{n}",
            )
        elif isinstance(layer, L.Mul):
            n = _nbytes(node.out_shape) // 4
            self._enqueue(
                "mul", {"shape": [n], "model_flops": base_flops},
                inputs=[BufferSlice(self._in_buf(node.inputs[0]), 0, n * 4),
                        BufferSlice(self._in_buf(node.inputs[1]), 0, n * 4)],
                outputs=[BufferSlice(out_buf, 0, n * 4)],
                cache_key=f"mul:{n}",
            )
        elif isinstance(layer, L.Slice):
            self._enqueue(
                "copy",
                {"shape": [layer.length], "model_flops": base_flops},
                inputs=[BufferSlice(self._in_buf(node.inputs[0]),
                                    layer.start * 4, layer.length * 4)],
                outputs=[BufferSlice(out_buf, 0, layer.length * 4)],
                cache_key=f"slice:{layer.length}",
            )
        elif isinstance(layer, L.ReLU):
            n = _nbytes(in_shapes[0]) // 4
            self._enqueue(
                "relu", {"shape": [n], "model_flops": base_flops},
                inputs=[BufferSlice(self._in_buf(node.inputs[0]), 0, n * 4)],
                outputs=[BufferSlice(out_buf, 0, n * 4)],
                cache_key=f"relu:{n}",
            )
        elif isinstance(layer, L.Add):
            n = _nbytes(node.out_shape) // 4
            self._enqueue(
                "add",
                {"shape": [n], "activation": layer.activation,
                 "model_flops": base_flops},
                inputs=[BufferSlice(self._in_buf(node.inputs[0]), 0, n * 4),
                        BufferSlice(self._in_buf(node.inputs[1]), 0, n * 4)],
                outputs=[BufferSlice(out_buf, 0, n * 4)],
                cache_key=f"add:{node.name}",
            )
        elif isinstance(layer, L.Concat):
            self._enqueue(
                "concat",
                {"in_shapes": [list(s) for s in in_shapes],
                 "model_flops": base_flops},
                inputs=[BufferSlice(self._in_buf(i), 0, _nbytes(s))
                        for i, s in zip(node.inputs, in_shapes)],
                outputs=[BufferSlice(out_buf, 0, _nbytes(node.out_shape))],
                cache_key=f"concat:{node.name}",
            )
        elif isinstance(layer, L.Softmax):
            n = _nbytes(in_shapes[0]) // 4
            self._enqueue(
                "softmax", {"shape": [n], "model_flops": base_flops},
                inputs=[BufferSlice(self._in_buf(node.inputs[0]), 0, n * 4)],
                outputs=[BufferSlice(out_buf, 0, n * 4)],
                cache_key=f"softmax:{n}",
            )
        elif isinstance(layer, L.LRN):
            self._enqueue(
                "lrn",
                {"in_shape": list(in_shapes[0]), "size": layer.size,
                 "alpha": layer.alpha, "beta": layer.beta, "k": layer.k,
                 "model_flops": base_flops},
                inputs=[BufferSlice(self._in_buf(node.inputs[0]), 0,
                                    _nbytes(in_shapes[0]))],
                outputs=[BufferSlice(out_buf, 0, _nbytes(node.out_shape))],
                cache_key=f"lrn:{node.name}",
            )
        elif isinstance(layer, L.BatchNorm):
            self._enqueue(
                "batchnorm",
                {"in_shape": list(in_shapes[0]),
                 "activation": layer.activation, "model_flops": base_flops},
                inputs=[BufferSlice(self._in_buf(node.inputs[0]), 0,
                                    _nbytes(in_shapes[0]))],
                weights=[self._buffers[f"{node.name}.weight"]],
                biases=[self._buffers[f"{node.name}.bias"]],
                outputs=[BufferSlice(out_buf, 0, _nbytes(node.out_shape))],
                cache_key=f"bn:{node.name}",
            )
        else:
            raise TypeError(f"no lowering for layer {type(layer).__name__}")

    def _lower_conv(self, node: Node, layer: L.Conv2D, in_shape,
                    out_buf: Buffer, base_flops: float) -> None:
        stage = self._stage(node, in_shape)
        in_c = in_shape[0]
        kh, kw = layer.kernel
        oc, oh, ow = node.out_shape
        wbuf = self._buffers[f"{node.name}.weight"]
        bbuf = self._buffers[f"{node.name}.bias"]
        split = layer.channel_split
        for start in range(0, oc, split):
            end = min(start + split, oc)
            gc = end - start
            w_off = start * in_c * kh * kw * 4
            w_len = gc * in_c * kh * kw * 4
            o_off = start * oh * ow * 4
            o_len = gc * oh * ow * 4
            self._enqueue(
                "conv2d",
                {"in_shape": list(in_shape), "w_shape": [gc, in_c, kh, kw],
                 "out_shape": [gc, oh, ow], "kernel": [kh, kw],
                 "stride": layer.stride, "pad": layer.pad,
                 "activation": layer.activation,
                 "model_flops": base_flops * gc / oc},
                inputs=[stage],
                weights=[BufferSlice(wbuf, w_off, w_len)],
                biases=[BufferSlice(bbuf, start * 4, gc * 4)],
                outputs=[BufferSlice(out_buf, o_off, o_len)],
                cache_key=f"conv:{node.name}:{gc}",
            )


# ---------------------------------------------------------------------------
# Reference forward pass (CPU-side oracle for tests)
# ---------------------------------------------------------------------------
def reference_forward(graph: Graph, weights: Dict[str, np.ndarray],
                      input_array: np.ndarray) -> np.ndarray:
    """Run the graph with plain numpy, bypassing the GPU stack entirely.

    Tests compare this against native execution and against TEE replay:
    all three must agree, which exercises buffer addressing, page tables,
    channel-split slicing, and replay data injection end to end.
    """
    return reference_activations(graph, weights,
                                 input_array)[graph.output.name]


def reference_activations(graph: Graph, weights: Dict[str, np.ndarray],
                          input_array: np.ndarray
                          ) -> Dict[str, np.ndarray]:
    """Per-node outputs of the numpy reference (segmented-replay oracle)."""
    from repro.hw import shader as S

    values: Dict[str, np.ndarray] = {INPUT: input_array.astype(np.float32)}
    for node in graph.nodes:
        layer = node.layer
        ins = [values[i] for i in node.inputs]
        base = weight_base_name(node)
        w = weights.get(f"{base}.weight")
        b = weights.get(f"{base}.bias")
        p: Dict = {}
        if isinstance(layer, L.Conv2D):
            p = {"stride": layer.stride, "pad": layer.pad,
                 "activation": layer.activation}
            out = S._conv2d(ins[0], w, b, p)
        elif isinstance(layer, L.DWConv2D):
            p = {"stride": layer.stride, "pad": layer.pad,
                 "activation": layer.activation}
            out = S._dwconv2d(ins[0], w, b, p)
        elif isinstance(layer, L.Dense):
            x = ins[0].reshape(-1)
            out = w @ x + b
            if layer.activation == "relu":
                out = np.maximum(out, 0.0)
        elif isinstance(layer, L.MaxPool):
            out = S._pool(ins[0], {"kernel": list(layer.kernel),
                                   "stride": layer.stride,
                                   "pad": layer.pad}, np.max)
        elif isinstance(layer, L.AvgPool):
            out = S._pool(ins[0], {"kernel": list(layer.kernel),
                                   "stride": layer.stride,
                                   "pad": layer.pad}, np.mean)
        elif isinstance(layer, L.GlobalAvgPool):
            out = ins[0].reshape(ins[0].shape[0], -1).mean(axis=1)
        elif isinstance(layer, L.ReLU):
            out = np.maximum(ins[0], 0.0)
        elif isinstance(layer, L.Activation):
            x = ins[0]
            if layer.kind == "relu":
                out = np.maximum(x, 0.0)
            elif layer.kind == "tanh":
                out = np.tanh(x)
            else:
                out = 1.0 / (1.0 + np.exp(-x))
        elif isinstance(layer, L.Mul):
            out = ins[0] * ins[1]
        elif isinstance(layer, L.Slice):
            out = ins[0].reshape(-1)[layer.start:layer.start + layer.length]
        elif isinstance(layer, L.Add):
            out = ins[0] + ins[1]
            if layer.activation == "relu":
                out = np.maximum(out, 0.0)
        elif isinstance(layer, L.Concat):
            out = np.concatenate(ins, axis=0)
        elif isinstance(layer, L.Softmax):
            x = ins[0].reshape(-1)
            e = np.exp(x - x.max())
            out = e / e.sum()
        elif isinstance(layer, L.LRN):
            out = S._lrn(ins[0], {"size": layer.size, "alpha": layer.alpha,
                                  "beta": layer.beta, "k": layer.k})
        elif isinstance(layer, L.BatchNorm):
            c = ins[0].shape[0]
            out = ins[0] * w[:c, None, None] + b[:c, None, None]
            if layer.activation == "relu":
                out = np.maximum(out, 0.0)
        else:
            raise TypeError(f"no reference for {type(layer).__name__}")
        values[node.name] = out.astype(np.float32).reshape(node.out_shape)
    return values
