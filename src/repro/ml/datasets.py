"""Synthetic digit data and a trainable readout head.

The reproduction cannot ship MNIST, so it generates a procedural
stand-in: seven-segment-style digit glyphs rendered onto the 28x28 canvas
with jitter and noise.  Together with :func:`fit_readout` — ridge
regression of the final dense layer on frozen random convolutional
features — this gives the examples and tests a *real classification
task*: accuracy well above chance, measurable end to end, and provably
identical between native execution and TEE replay.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.ml.graph import Graph
from repro.ml.runner import reference_activations

# Seven-segment geometry on a 28x28 canvas: (row0, row1, col0, col1).
_H = 3  # stroke thickness
_SEGMENTS = {
    "top": (4, 4 + _H, 8, 20),
    "top_left": (4, 14, 8, 8 + _H),
    "top_right": (4, 14, 20 - _H, 20),
    "middle": (13, 13 + _H, 8, 20),
    "bottom_left": (14, 24, 8, 8 + _H),
    "bottom_right": (14, 24, 20 - _H, 20),
    "bottom": (21, 21 + _H, 8, 20),
}

_DIGIT_SEGMENTS = {
    0: ("top", "top_left", "top_right", "bottom_left", "bottom_right",
        "bottom"),
    1: ("top_right", "bottom_right"),
    2: ("top", "top_right", "middle", "bottom_left", "bottom"),
    3: ("top", "top_right", "middle", "bottom_right", "bottom"),
    4: ("top_left", "top_right", "middle", "bottom_right"),
    5: ("top", "top_left", "middle", "bottom_right", "bottom"),
    6: ("top", "top_left", "middle", "bottom_left", "bottom_right",
        "bottom"),
    7: ("top", "top_right", "bottom_right"),
    8: ("top", "top_left", "top_right", "middle", "bottom_left",
        "bottom_right", "bottom"),
    9: ("top", "top_left", "top_right", "middle", "bottom_right",
        "bottom"),
}


def render_digit(digit: int, rng: np.random.RandomState,
                 noise: float = 0.15, max_shift: int = 2) -> np.ndarray:
    """One (1, 28, 28) glyph with random shift and Gaussian noise."""
    canvas = np.zeros((28, 28), dtype=np.float32)
    for name in _DIGIT_SEGMENTS[digit]:
        r0, r1, c0, c1 = _SEGMENTS[name]
        canvas[r0:r1, c0:c1] = 1.0
    dr = rng.randint(-max_shift, max_shift + 1)
    dc = rng.randint(-max_shift, max_shift + 1)
    canvas = np.roll(np.roll(canvas, dr, axis=0), dc, axis=1)
    canvas += noise * rng.randn(28, 28).astype(np.float32)
    return np.clip(canvas, 0.0, 1.0)[None, :, :]


def synthetic_digits(n: int, seed: int = 0, noise: float = 0.15
                     ) -> Tuple[np.ndarray, np.ndarray]:
    """``n`` labelled digit images, shape (n, 1, 28, 28)."""
    rng = np.random.RandomState(seed)
    labels = rng.randint(0, 10, size=n)
    images = np.stack([render_digit(int(d), rng, noise) for d in labels])
    return images.astype(np.float32), labels


def fit_readout(graph: Graph, weights: Dict[str, np.ndarray],
                images: np.ndarray, labels: np.ndarray,
                feature_node: str = "fc2", head_node: str = "fc3",
                ridge: float = 1.0) -> Dict[str, np.ndarray]:
    """Train the final dense layer on frozen random features.

    Everything before ``head_node`` keeps its random initialization (a
    random-feature extractor); the head is fit in closed form with ridge
    regression.  Returns a new weights dict; the graph is unchanged, so
    existing recordings replay it directly — retraining a model never
    requires re-recording (§2.3: weights are injected data).
    """
    features = np.stack([
        reference_activations(graph, weights, img)[feature_node].reshape(-1)
        for img in images
    ])
    ones = np.ones((features.shape[0], 1), dtype=np.float32)
    design = np.concatenate([features, ones], axis=1)
    targets = np.eye(10, dtype=np.float32)[labels]
    gram = design.T @ design + ridge * np.eye(design.shape[1],
                                              dtype=np.float32)
    solution = np.linalg.solve(gram, design.T @ targets)  # (d+1, 10)

    trained = dict(weights)
    trained[f"{head_node}.weight"] = np.ascontiguousarray(
        solution[:-1].T.astype(np.float32))
    trained[f"{head_node}.bias"] = np.ascontiguousarray(
        solution[-1].astype(np.float32))
    return trained


def accuracy(outputs: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy of (n, 10) outputs against integer labels."""
    predictions = outputs.reshape(len(labels), -1).argmax(axis=1)
    return float((predictions == labels).mean())
