"""The ML framework layer (the ACL/TFLite analogue).

Defines NN inference workloads as static graphs of layers — static job
graphs are the property GR exploits for input independence (§2.3) — and a
runner that lowers them onto the GPU runtime exactly the way the paper's
workloads run on the ARM Compute Library: one or more GPU jobs per layer,
serialized, with weights/activations living in GPU data buffers.

The six evaluation workloads (Table 1) are built in
:mod:`repro.ml.models`: MNIST, AlexNet, MobileNet, SqueezeNet, ResNet12,
VGG16.
"""

from repro.ml.graph import Graph, Node, GraphError
from repro.ml import layers
from repro.ml.models import (
    build_model,
    mnist,
    alexnet,
    mobilenet,
    squeezenet,
    resnet12,
    vgg16,
    PAPER_WORKLOADS,
)
from repro.ml.runner import WorkloadRunner, DataBinding, RunManifest
from repro.ml.datasets import synthetic_digits, fit_readout, accuracy

__all__ = [
    "Graph",
    "Node",
    "GraphError",
    "layers",
    "build_model",
    "mnist",
    "alexnet",
    "mobilenet",
    "squeezenet",
    "resnet12",
    "vgg16",
    "PAPER_WORKLOADS",
    "WorkloadRunner",
    "DataBinding",
    "RunManifest",
    "synthetic_digits",
    "fit_readout",
    "accuracy",
]
