"""The six evaluation workloads (Table 1): MNIST, AlexNet, MobileNet,
SqueezeNet, ResNet12, VGG16.

Each builder returns a static :class:`~repro.ml.graph.Graph`.  The large
ImageNet-class networks are *defined at reduced spatial resolution* so
that real numpy math stays tractable, while every node carries a
``flops_scale`` that restores the operator cost at the paper's reference
resolution for the GPU duration model.  Layer structure, job structure,
and parameter topology are unchanged; see DESIGN.md ("substitutions").
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.ml.graph import Graph, INPUT
from repro.ml.layers import (
    Activation,
    Add,
    BatchNorm,
    Concat,
    Conv2D,
    Dense,
    DWConv2D,
    GlobalAvgPool,
    LRN,
    MaxPool,
    Slice,
    Softmax,
)


class _Chain:
    """Helper that threads a sequential graph, tracking the last node."""

    def __init__(self, graph: Graph, flops_scale: float) -> None:
        self.graph = graph
        self.scale = flops_scale
        self.last = INPUT

    def add(self, name: str, layer, inputs=None, scale=None) -> str:
        node = self.graph.add(
            name, layer,
            inputs if inputs is not None else [self.last],
            flops_scale=self.scale if scale is None else scale,
        )
        self.last = name
        return name


def mnist() -> Graph:
    """LeNet-5 style MNIST classifier, full resolution (28x28)."""
    g = Graph("mnist", (1, 28, 28))
    c = _Chain(g, flops_scale=1.0)
    c.add("conv1", Conv2D(6, 5, pad=2, activation="relu"))
    c.add("pool1", MaxPool(2))
    c.add("conv2", Conv2D(16, 5, activation="relu"))
    c.add("pool2", MaxPool(2))
    c.add("fc1", Dense(120, activation="relu"))
    c.add("fc2", Dense(84, activation="relu"))
    c.add("fc3", Dense(10))
    c.add("softmax", Softmax())
    g.validate()
    return g


def alexnet() -> Graph:
    """AlexNet at 112x112 (reference 224: flops_scale 4)."""
    g = Graph("alexnet", (3, 112, 112))
    c = _Chain(g, flops_scale=4.0)
    c.add("conv1", Conv2D(96, 11, stride=4, pad=2, activation="relu"))
    c.add("lrn1", LRN())
    c.add("pool1", MaxPool(3, stride=2))
    c.add("conv2", Conv2D(256, 5, pad=2, activation="relu"))
    c.add("lrn2", LRN())
    c.add("pool2", MaxPool(3, stride=2))
    c.add("conv3", Conv2D(384, 3, pad=1, activation="relu"))
    c.add("conv4", Conv2D(384, 3, pad=1, activation="relu"))
    c.add("conv5", Conv2D(256, 3, pad=1, activation="relu"))
    c.add("pool5", MaxPool(3, stride=2))
    c.add("fc1", Dense(4096, activation="relu"))
    c.add("fc2", Dense(4096, activation="relu"))
    c.add("fc3", Dense(1000))
    c.add("softmax", Softmax(), scale=1.0)
    g.validate()
    return g


def mobilenet() -> Graph:
    """MobileNet v1 (width 1.0) at 112x112 (flops_scale 4)."""
    g = Graph("mobilenet", (3, 112, 112))
    c = _Chain(g, flops_scale=4.0)
    c.add("conv1", Conv2D(32, 3, stride=2, pad=1, activation="relu"))
    blocks = [(64, 1), (128, 2), (128, 1), (256, 2), (256, 1), (512, 2),
              (512, 1), (512, 1), (512, 1), (512, 1), (512, 1),
              (1024, 2), (1024, 1)]
    for i, (out_c, stride) in enumerate(blocks, start=1):
        c.add(f"dw{i}", DWConv2D(3, stride=stride, pad=1, activation="relu"))
        c.add(f"pw{i}", Conv2D(out_c, 1, activation="relu"))
    c.add("gap", GlobalAvgPool())
    c.add("fc", Dense(1000), scale=1.0)
    c.add("softmax", Softmax(), scale=1.0)
    g.validate()
    return g


def _fire(c: _Chain, name: str, squeeze: int, expand: int) -> None:
    """A SqueezeNet fire module: squeeze 1x1, expand 1x1 || 3x3, concat."""
    inp = c.last
    c.graph.add(f"{name}.squeeze", Conv2D(squeeze, 1, activation="relu"),
                [inp], flops_scale=c.scale)
    c.graph.add(f"{name}.e1", Conv2D(expand, 1, activation="relu"),
                [f"{name}.squeeze"], flops_scale=c.scale)
    c.graph.add(f"{name}.e3", Conv2D(expand, 3, pad=1, activation="relu"),
                [f"{name}.squeeze"], flops_scale=c.scale)
    c.graph.add(f"{name}.concat", Concat(),
                [f"{name}.e1", f"{name}.e3"], flops_scale=c.scale)
    c.last = f"{name}.concat"


def squeezenet() -> Graph:
    """SqueezeNet v1.0 at 112x112 (flops_scale 4)."""
    g = Graph("squeezenet", (3, 112, 112))
    c = _Chain(g, flops_scale=4.0)
    c.add("conv1", Conv2D(96, 7, stride=2, pad=3, activation="relu"))
    c.add("pool1", MaxPool(3, stride=2))
    _fire(c, "fire2", 16, 64)
    _fire(c, "fire3", 16, 64)
    _fire(c, "fire4", 32, 128)
    c.add("pool4", MaxPool(3, stride=2))
    _fire(c, "fire5", 32, 128)
    _fire(c, "fire6", 48, 192)
    _fire(c, "fire7", 48, 192)
    _fire(c, "fire8", 64, 256)
    c.add("pool8", MaxPool(3, stride=2))
    _fire(c, "fire9", 64, 256)
    c.add("conv10", Conv2D(1000, 1, activation="relu"))
    c.add("gap", GlobalAvgPool())
    c.add("softmax", Softmax(), scale=1.0)
    g.validate()
    return g


def _res_block(c: _Chain, name: str, out_c: int, stride: int,
               project: bool) -> None:
    """conv-bn-relu, conv-bn, (projection), add+relu."""
    inp = c.last
    s = c.scale
    g = c.graph
    g.add(f"{name}.conv1", Conv2D(out_c, 3, stride=stride, pad=1), [inp],
          flops_scale=s)
    g.add(f"{name}.bn1", BatchNorm(activation="relu"), [f"{name}.conv1"],
          flops_scale=s)
    g.add(f"{name}.conv2", Conv2D(out_c, 3, pad=1), [f"{name}.bn1"],
          flops_scale=s)
    g.add(f"{name}.bn2", BatchNorm(), [f"{name}.conv2"], flops_scale=s)
    skip = inp
    if project:
        g.add(f"{name}.proj", Conv2D(out_c, 1, stride=stride), [inp],
              flops_scale=s)
        g.add(f"{name}.projbn", BatchNorm(), [f"{name}.proj"], flops_scale=s)
        skip = f"{name}.projbn"
    g.add(f"{name}.add", Add(activation="relu"),
          [f"{name}.bn2", skip], flops_scale=s)
    c.last = f"{name}.add"


def resnet12() -> Graph:
    """A 12-conv residual network at 112x112 (flops_scale 4)."""
    g = Graph("resnet12", (3, 112, 112))
    c = _Chain(g, flops_scale=4.0)
    c.add("conv1", Conv2D(64, 7, stride=2, pad=3))
    c.add("bn1", BatchNorm(activation="relu"))
    c.add("pool1", MaxPool(3, stride=2, pad=1))
    _res_block(c, "block1", 64, 1, project=False)   # identity skip
    _res_block(c, "block2", 128, 2, project=True)
    _res_block(c, "block3", 256, 2, project=True)
    _res_block(c, "block4", 512, 2, project=True)
    c.add("gap", GlobalAvgPool())
    c.add("fc", Dense(1000), scale=1.0)
    c.add("softmax", Softmax(), scale=1.0)
    g.validate()
    return g


def vgg16() -> Graph:
    """VGG-16 at 64x64 (reference 224: flops_scale 12.25)."""
    g = Graph("vgg16", (3, 64, 64))
    c = _Chain(g, flops_scale=(224 / 64) ** 2)
    cfg = [(64, 2), (128, 2), (256, 3), (512, 3), (512, 3)]
    for stage, (channels, reps) in enumerate(cfg, start=1):
        for rep in range(1, reps + 1):
            c.add(f"conv{stage}_{rep}",
                  Conv2D(channels, 3, pad=1, activation="relu"))
        c.add(f"pool{stage}", MaxPool(2))
    c.add("fc1", Dense(4096, activation="relu"))
    c.add("fc2", Dense(4096, activation="relu"))
    c.add("fc3", Dense(1000))
    c.add("softmax", Softmax(), scale=1.0)
    g.validate()
    return g


def rnn(steps: int = 6, features: int = 16, hidden: int = 32) -> Graph:
    """An unrolled Elman RNN with *tied* cell weights.

    §2.3's input-independence argument covers "CNN and RNN": recurrent
    networks unroll into static job graphs, so one record run captures
    them too.  The per-timestep Dense layers share one weight buffer
    (``tie``) exactly as a real recurrent cell would.
    """
    g = Graph("rnn", (steps, features))
    c = _Chain(g, flops_scale=1.0)
    prev_h = None
    for t in range(steps):
        g.add(f"x{t}", Slice(start=t * features, length=features),
              [INPUT])
        g.add(f"wx{t}", Dense(hidden, tie="cell.wx"), [f"x{t}"])
        if prev_h is None:
            pre = f"wx{t}"
        else:
            g.add(f"uh{t}", Dense(hidden, tie="cell.uh"), [prev_h])
            g.add(f"sum{t}", Add(), [f"wx{t}", f"uh{t}"])
            pre = f"sum{t}"
        g.add(f"h{t}", Activation("tanh"), [pre])
        prev_h = f"h{t}"
    g.add("logits", Dense(10), [prev_h])
    g.add("softmax", Softmax(), ["logits"])
    g.validate()
    return g


PAPER_WORKLOADS: Dict[str, Callable[[], Graph]] = {
    "mnist": mnist,
    "alexnet": alexnet,
    "mobilenet": mobilenet,
    "squeezenet": squeezenet,
    "resnet12": resnet12,
    "vgg16": vgg16,
}

#: Workloads beyond the paper's Table 1 (usable everywhere, not benchmarked
#: against paper numbers).
EXTRA_WORKLOADS: Dict[str, Callable[[], Graph]] = {
    "rnn": rnn,
}


def build_model(name: str) -> Graph:
    builder = PAPER_WORKLOADS.get(name) or EXTRA_WORKLOADS.get(name)
    if builder is None:
        raise KeyError(
            f"unknown workload {name!r}; known: "
            f"{sorted([*PAPER_WORKLOADS, *EXTRA_WORKLOADS])}")
    return builder()
