"""NN layer definitions: shapes, parameters, and FLOP counts.

Layers are pure descriptions — the runner lowers them to GPU jobs.  Shape
inference works on (C, H, W) tuples for spatial layers and (N,) for dense
layers, batch size 1 throughout (mobile inference).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

Shape = Tuple[int, ...]


class ShapeError(ValueError):
    """Layer applied to an incompatible input shape."""


def _pair(v) -> Tuple[int, int]:
    return (v, v) if isinstance(v, int) else tuple(v)


def _conv_out(size: int, k: int, stride: int, pad: int) -> int:
    out = (size + 2 * pad - k) // stride + 1
    if out <= 0:
        raise ShapeError(f"convolution collapses dimension: size={size} "
                         f"k={k} stride={stride} pad={pad}")
    return out


@dataclass(frozen=True)
class Layer:
    """Base layer. Subclasses override shape/flops/params logic."""

    def infer_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        raise NotImplementedError

    def flops(self, in_shapes: Sequence[Shape]) -> float:
        raise NotImplementedError

    def weight_shape(self, in_shapes: Sequence[Shape]) -> Optional[Shape]:
        return None

    def bias_shape(self, in_shapes: Sequence[Shape]) -> Optional[Shape]:
        return None

    def param_count(self, in_shapes: Sequence[Shape]) -> int:
        total = 0
        for shape in (self.weight_shape(in_shapes), self.bias_shape(in_shapes)):
            if shape is not None:
                n = 1
                for d in shape:
                    n *= d
                total += n
        return total


@dataclass(frozen=True)
class Conv2D(Layer):
    out_channels: int
    kernel: Tuple[int, int]
    stride: int = 1
    pad: int = 0
    activation: Optional[str] = None
    # Large convolutions are tiled into jobs of this many output channels,
    # mirroring how the runtime splits work (drives per-NN job counts).
    channel_split: int = 64

    def __init__(self, out_channels, kernel, stride=1, pad=0,
                 activation=None, channel_split=64):
        object.__setattr__(self, "out_channels", out_channels)
        object.__setattr__(self, "kernel", _pair(kernel))
        object.__setattr__(self, "stride", stride)
        object.__setattr__(self, "pad", pad)
        object.__setattr__(self, "activation", activation)
        object.__setattr__(self, "channel_split", channel_split)

    def infer_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        (c, h, w), = in_shapes
        kh, kw = self.kernel
        return (self.out_channels,
                _conv_out(h, kh, self.stride, self.pad),
                _conv_out(w, kw, self.stride, self.pad))

    def flops(self, in_shapes: Sequence[Shape]) -> float:
        (c, _, _), = in_shapes
        oc, oh, ow = self.infer_shape(in_shapes)
        kh, kw = self.kernel
        return 2.0 * oc * oh * ow * c * kh * kw

    def weight_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        (c, _, _), = in_shapes
        return (self.out_channels, c, *self.kernel)

    def bias_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        return (self.out_channels,)

    def n_channel_groups(self) -> int:
        return -(-self.out_channels // self.channel_split)


@dataclass(frozen=True)
class DWConv2D(Layer):
    kernel: Tuple[int, int]
    stride: int = 1
    pad: int = 0
    activation: Optional[str] = None

    def __init__(self, kernel, stride=1, pad=0, activation=None):
        object.__setattr__(self, "kernel", _pair(kernel))
        object.__setattr__(self, "stride", stride)
        object.__setattr__(self, "pad", pad)
        object.__setattr__(self, "activation", activation)

    def infer_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        (c, h, w), = in_shapes
        kh, kw = self.kernel
        return (c, _conv_out(h, kh, self.stride, self.pad),
                _conv_out(w, kw, self.stride, self.pad))

    def flops(self, in_shapes: Sequence[Shape]) -> float:
        c, oh, ow = self.infer_shape(in_shapes)
        kh, kw = self.kernel
        return 2.0 * c * oh * ow * kh * kw

    def weight_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        (c, _, _), = in_shapes
        return (c, *self.kernel)

    def bias_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        (c, _, _), = in_shapes
        return (c,)


@dataclass(frozen=True)
class Dense(Layer):
    out_features: int
    activation: Optional[str] = None
    # Weight tying for unrolled recurrent graphs: every Dense with the
    # same ``tie`` name shares one weight/bias buffer.
    tie: Optional[str] = None

    def infer_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        return (self.out_features,)

    def _in_features(self, in_shapes: Sequence[Shape]) -> int:
        n = 1
        for d in in_shapes[0]:
            n *= d
        return n

    def flops(self, in_shapes: Sequence[Shape]) -> float:
        return 2.0 * self._in_features(in_shapes) * self.out_features

    def weight_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        return (self.out_features, self._in_features(in_shapes))

    def bias_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        return (self.out_features,)


@dataclass(frozen=True)
class MaxPool(Layer):
    kernel: Tuple[int, int]
    stride: Optional[int] = None
    pad: int = 0

    def __init__(self, kernel, stride=None, pad=0):
        object.__setattr__(self, "kernel", _pair(kernel))
        object.__setattr__(self, "stride", stride or self.kernel[0])
        object.__setattr__(self, "pad", pad)

    def infer_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        (c, h, w), = in_shapes
        kh, kw = self.kernel
        return (c, _conv_out(h, kh, self.stride, self.pad),
                _conv_out(w, kw, self.stride, self.pad))

    def flops(self, in_shapes: Sequence[Shape]) -> float:
        c, oh, ow = self.infer_shape(in_shapes)
        kh, kw = self.kernel
        return float(c * oh * ow * kh * kw)


@dataclass(frozen=True)
class AvgPool(MaxPool):
    pass


@dataclass(frozen=True)
class GlobalAvgPool(Layer):
    def infer_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        (c, _, _), = in_shapes
        return (c,)

    def flops(self, in_shapes: Sequence[Shape]) -> float:
        c, h, w = in_shapes[0]
        return float(c * h * w)


@dataclass(frozen=True)
class ReLU(Layer):
    def infer_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        return in_shapes[0]

    def flops(self, in_shapes: Sequence[Shape]) -> float:
        n = 1
        for d in in_shapes[0]:
            n *= d
        return float(n)


@dataclass(frozen=True)
class Activation(Layer):
    """A standalone elementwise nonlinearity: relu, tanh, or sigmoid."""

    kind: str = "tanh"

    VALID = ("relu", "tanh", "sigmoid")

    def __post_init__(self):
        if self.kind not in self.VALID:
            raise ShapeError(f"unknown activation {self.kind!r}")

    def infer_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        return in_shapes[0]

    def flops(self, in_shapes: Sequence[Shape]) -> float:
        n = 1
        for d in in_shapes[0]:
            n *= d
        return 4.0 * n


@dataclass(frozen=True)
class Mul(Layer):
    """Elementwise product of two inputs (gating in recurrent cells)."""

    def infer_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        a, b = in_shapes
        if a != b:
            raise ShapeError(f"elementwise mul of mismatched {a} vs {b}")
        return a

    def flops(self, in_shapes: Sequence[Shape]) -> float:
        n = 1
        for d in in_shapes[0]:
            n *= d
        return float(n)


@dataclass(frozen=True)
class Slice(Layer):
    """A contiguous range of the flattened input (timestep extraction)."""

    start: int = 0
    length: int = 1

    def infer_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        total = 1
        for d in in_shapes[0]:
            total *= d
        if self.start < 0 or self.start + self.length > total:
            raise ShapeError(
                f"slice [{self.start}:{self.start + self.length}] out of "
                f"range for {in_shapes[0]}")
        return (self.length,)

    def flops(self, in_shapes: Sequence[Shape]) -> float:
        return float(self.length)


@dataclass(frozen=True)
class Add(Layer):
    activation: Optional[str] = None

    def infer_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        a, b = in_shapes
        if a != b:
            raise ShapeError(f"residual add of mismatched shapes {a} vs {b}")
        return a

    def flops(self, in_shapes: Sequence[Shape]) -> float:
        n = 1
        for d in in_shapes[0]:
            n *= d
        return float(n)


@dataclass(frozen=True)
class Concat(Layer):
    """Channel-wise concatenation (axis 0 of CHW)."""

    def infer_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        base = in_shapes[0][1:]
        for s in in_shapes[1:]:
            if s[1:] != base:
                raise ShapeError(f"concat spatial mismatch: {in_shapes}")
        return (sum(s[0] for s in in_shapes), *base)

    def flops(self, in_shapes: Sequence[Shape]) -> float:
        return float(sum(int(s[0] * s[1] * s[2]) for s in in_shapes))


@dataclass(frozen=True)
class Softmax(Layer):
    def infer_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        return in_shapes[0]

    def flops(self, in_shapes: Sequence[Shape]) -> float:
        n = 1
        for d in in_shapes[0]:
            n *= d
        return 5.0 * n


@dataclass(frozen=True)
class LRN(Layer):
    size: int = 5
    alpha: float = 1e-4
    beta: float = 0.75
    k: float = 2.0

    def infer_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        return in_shapes[0]

    def flops(self, in_shapes: Sequence[Shape]) -> float:
        c, h, w = in_shapes[0]
        return float(c * h * w * (self.size + 3))


@dataclass(frozen=True)
class BatchNorm(Layer):
    activation: Optional[str] = None

    def infer_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        return in_shapes[0]

    def flops(self, in_shapes: Sequence[Shape]) -> float:
        c, h, w = in_shapes[0]
        return 2.0 * c * h * w

    def weight_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        return (in_shapes[0][0],)

    def bias_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        return (in_shapes[0][0],)
