"""The in-TEE replayer (§2.2, §2.3, §3.2).

The replayer is deliberately tiny — the paper's point is that it replaces
the whole GPU stack with a few KSLoC of log streaming.  It:

1. verifies the recording's signature against the pinned cloud key and its
   SKU fingerprint against the physical GPU (§7.1, §2.4);
2. locks the GPU into the TEE and resets it;
3. injects the confidential data — model weights and the new input — at
   the addresses the manifest records (data never left the TEE, §7.1);
4. streams the interaction log at the GPU: writes are applied, reads are
   matched (polling briefly when hardware needs time to reach the recorded
   value), memory images are installed with *data pages filtered out* so
   injected tensors survive, interrupts are awaited;
5. reads the output tensor from the recorded output address, resets the
   GPU, and releases it to the normal world.

:func:`replay_entries` is the shared engine; misprediction recovery uses
it to fast-forward the client GPU over a validated log prefix (§4.2).
"""

# repro-check: module-allow[bus-confinement] -- the replayer IS the client-side bus: it streams the recorded log at the raw GPU with no driver above it, so there is no shim to confine these accesses to (§3.2)

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.core.recording import (
    Entry,
    IrqEntry,
    Marker,
    MemUpload,
    MemWrite,
    PollEntry,
    Recording,
    RegRead,
    RegWrite,
)
from repro.driver.bus import PollSpec
from repro.hw.memory import PhysicalMemory
from repro.sim.clock import VirtualClock
from repro.sim.energy import EnergyMeter
from repro.tee.crypto import SigningKey
from repro.tee.optee import OpTeeOS
from repro.tee.worlds import GpuMmioGuard, World

# Replay cost model: the replayer is a log streamer, far cheaper per
# interaction than the runtime+driver path it replaces (Table 2).
REPLAY_REG_ENTRY_COST_S = 0.35e-6
REPLAY_MEM_BANDWIDTH_BPS = 3.0e9
REPLAY_SETUP_COST_S = 0.4e-3
READ_MATCH_TIMEOUT_S = 2.0


class ReplayError(RuntimeError):
    """Replay could not proceed (bad signature, wrong SKU, divergence)."""


class ReplayDivergence(ReplayError):
    """The GPU's behaviour departed from the recording."""


@dataclass
class ReplayStats:
    entries: int = 0
    reg_writes: int = 0
    reg_reads: int = 0
    read_retries: int = 0
    polls: int = 0
    irq_waits: int = 0
    pages_loaded: int = 0
    pages_skipped: int = 0


def replay_entries(gpu, mem: PhysicalMemory, clock: VirtualClock,
                   entries: Sequence[Entry],
                   skip_pfns: Iterable[int] = (),
                   strict: bool = True) -> ReplayStats:
    """Stream a log at a GPU.  ``skip_pfns`` protects injected data pages."""
    stats = ReplayStats()
    skip = set(skip_pfns)
    for entry in entries:
        stats.entries += 1
        if isinstance(entry, RegWrite):
            clock.advance(REPLAY_REG_ENTRY_COST_S, label="cpu")
            gpu.write_reg(entry.offset, entry.value)
            stats.reg_writes += 1
        elif isinstance(entry, RegRead):
            clock.advance(REPLAY_REG_ENTRY_COST_S, label="cpu")
            stats.reg_reads += 1
            _match_read(gpu, clock, entry, stats, strict)
        elif isinstance(entry, PollEntry):
            stats.polls += 1
            _replay_poll(gpu, clock, entry, strict)
        elif isinstance(entry, IrqEntry):
            stats.irq_waits += 1
            _await_irq(gpu, clock, entry.line, strict)
        elif isinstance(entry, MemWrite):
            loaded = 0
            for pfn, raw in entry.pages:
                if pfn in skip:
                    stats.pages_skipped += 1
                    continue
                mem.write_page(pfn, raw)
                loaded += 1
            stats.pages_loaded += loaded
            clock.advance(loaded * 4096 / REPLAY_MEM_BANDWIDTH_BPS,
                          label="cpu")
        elif isinstance(entry, (MemUpload, Marker)):
            continue
        else:
            raise ReplayError(f"unknown entry {entry!r}")
    return stats


def _match_read(gpu, clock: VirtualClock, entry: RegRead,
                stats: ReplayStats, strict: bool) -> None:
    """Read until the recorded value appears (hardware may still be in a
    transition the recorded driver had already waited out)."""
    deadline = clock.now + READ_MATCH_TIMEOUT_S
    value = gpu.read_reg(entry.offset)
    while value != entry.value:
        next_event = gpu.next_event_time()
        if next_event is None or next_event > deadline:
            if strict:
                raise ReplayDivergence(
                    f"read of reg {entry.offset:#x} stuck at {value:#x}, "
                    f"recording expects {entry.value:#x}")
            return
        clock.advance_to(next_event, label="gpu")
        gpu.service()
        stats.read_retries += 1
        value = gpu.read_reg(entry.offset)


def _replay_poll(gpu, clock: VirtualClock, entry: PollEntry,
                 strict: bool) -> None:
    spec = PollSpec(offset=entry.offset, condition=entry.condition,
                    operand=entry.operand, max_iters=max(entry.iterations * 4,
                                                         64))
    value = gpu.read_reg(entry.offset)
    iterations = 1
    while not spec.satisfied_by(value) and iterations < spec.max_iters:
        next_event = gpu.next_event_time()
        if next_event is None:
            break
        clock.advance_to(next_event, label="gpu")
        gpu.service()
        value = gpu.read_reg(entry.offset)
        iterations += 1
    if strict and not spec.satisfied_by(value):
        raise ReplayDivergence(
            f"poll on reg {entry.offset:#x} never satisfied "
            f"({entry.condition} {entry.operand:#x}); last value {value:#x}")


def _await_irq(gpu, clock: VirtualClock, line: str, strict: bool) -> None:
    deadline = clock.now + READ_MATCH_TIMEOUT_S * 4
    while not gpu.irq_pending(line):
        next_event = gpu.next_event_time()
        if next_event is None or next_event > deadline:
            if strict:
                raise ReplayDivergence(
                    f"recorded {line} interrupt never arrived")
            return
        clock.advance_to(next_event, label="gpu")
        gpu.service()


def _accumulate(total: ReplayStats, part: ReplayStats) -> None:
    total.entries += part.entries
    total.reg_writes += part.reg_writes
    total.reg_reads += part.reg_reads
    total.read_retries += part.read_retries
    total.polls += part.polls
    total.irq_waits += part.irq_waits
    total.pages_loaded += part.pages_loaded
    total.pages_skipped += part.pages_skipped


@dataclass
class ReplayResult:
    output: np.ndarray
    delay_s: float
    energy_j: float
    stats: ReplayStats


class Replayer:
    """The TEE-resident replayer serving one client device."""

    def __init__(self, optee: OpTeeOS, gpu, mem: PhysicalMemory,
                 clock: VirtualClock, verify_key: SigningKey,
                 clk=None) -> None:
        self.optee = optee
        self.gpu_raw = gpu
        self.gpu = GpuMmioGuard(gpu, optee.tzasc, World.SECURE)
        self.mem = mem
        self.clock = clock
        self.verify_key = verify_key
        # Optional SoC clock controller, pinned during replay (§6).
        self.clk = clk

    # ------------------------------------------------------------------
    def load(self, blob: bytes) -> Recording:
        """Verify and parse a downloaded recording (§7.1: the replayer
        only accepts recordings signed by the cloud)."""
        return Recording.from_bytes(blob, verify_key=self.verify_key)

    def check_sku(self, recording: Recording) -> None:
        fp = self.gpu_raw.sku.fingerprint()
        if tuple(recording.sku_fingerprint) != tuple(fp):
            raise ReplayError(
                f"recording bound to SKU fingerprint "
                f"{recording.sku_fingerprint}, device is {fp} (§2.4: even "
                f"subtle SKU differences break replay)")

    # ------------------------------------------------------------------
    def open(self, recording: Recording,
             weights: Optional[Dict[str, np.ndarray]] = None
             ) -> "ReplaySession":
        """Prepare a replay session: verify the SKU binding and install
        model parameters once.  Weights stay resident in TEE memory across
        inferences (the per-inference cost of Table 2 covers only input
        injection + log streaming + output fetch)."""
        self.check_sku(recording)
        session = ReplaySession(self, recording)
        session.install_weights(weights)
        return session

    def replay(self, recording: Recording, input_array: np.ndarray,
               weights: Optional[Dict[str, np.ndarray]] = None
               ) -> ReplayResult:
        """Convenience one-shot: open + run."""
        return self.open(recording, weights).run(input_array)


class ReplaySession:
    """One recording opened for repeated inference inside the TEE."""

    def __init__(self, replayer: Replayer, recording: Recording) -> None:
        self.replayer = replayer
        self.recording = recording
        self.runs = 0

    # ------------------------------------------------------------------
    def install_weights(self, weights: Optional[Dict[str, np.ndarray]]
                        ) -> None:
        """Write model parameters to the recorded weight addresses (§7.1:
        they never leave the TEE)."""
        r = self.replayer
        manifest = self.recording.manifest
        total = 0
        for wb in manifest.weight_bindings():
            if weights is None or wb.name not in weights:
                raise ReplayError(f"missing weights for {wb.name!r}")
            array = np.ascontiguousarray(weights[wb.name], dtype=np.float32)
            if array.nbytes > wb.size:
                raise ReplayError(
                    f"weights {wb.name!r} overflow the recorded buffer")
            r.mem.write_array(wb.pa, array)
            total += array.nbytes
        r.clock.advance(total / REPLAY_MEM_BANDWIDTH_BPS, label="cpu")

    def _inject_input(self, input_array: np.ndarray) -> None:
        r = self.replayer
        binding = self.recording.manifest.binding("input")
        expected = tuple(binding.shape)
        if tuple(input_array.shape) != expected:
            raise ReplayError(
                f"input shape {input_array.shape} != recorded {expected}")
        r.mem.write_array(binding.pa, input_array.astype(np.float32))
        r.clock.advance(input_array.nbytes / REPLAY_MEM_BANDWIDTH_BPS,
                        label="cpu")

    def _fetch_output(self) -> np.ndarray:
        r = self.replayer
        binding = self.recording.manifest.binding("output")
        count = int(np.prod(binding.shape))
        return r.mem.view(binding.pa, (count,),
                          np.float32).reshape(binding.shape).copy()

    # ------------------------------------------------------------------
    def run(self, input_array: np.ndarray) -> ReplayResult:
        """One inference: lock GPU, reset, stream the log, fetch output."""
        return self._execute(input_array, self.recording.entries,
                             self._fetch_output)

    # ------------------------------------------------------------------
    # Segmented replay (Figure 2): recordings split at layer markers
    # ------------------------------------------------------------------
    def segment_labels(self) -> List[str]:
        """Layer labels of the recording's segments, in replay order."""
        return [label for label, _ in self.recording.segments()]

    def run_prefix(self, input_array: np.ndarray, upto: str) -> ReplayResult:
        """Replay only through the segment labelled ``upto`` and return
        that layer's activation — the per-layer recording granularity of
        Figure 2 (composability at the cost of a partial run)."""
        segments = self.recording.segments()
        labels = [label for label, _ in segments]
        if upto not in labels:
            raise ReplayError(
                f"no segment labelled {upto!r}; have {labels[1:]}")
        entries: List[Entry] = []
        for label, seg in segments:
            entries.extend(seg)
            if label == upto:
                break
        binding = self.recording.manifest.binding(f"{upto}.out")

        def fetch() -> np.ndarray:
            count = int(np.prod(binding.shape))
            return self.replayer.mem.view(
                binding.pa, (count,), np.float32
            ).reshape(binding.shape).copy()

        return self._execute(input_array, entries, fetch)

    def run_batch(self, inputs: Sequence[np.ndarray]) -> List[ReplayResult]:
        """Replay many inputs back to back under one GPU acquisition.

        The paper's motivating apps (video analytics, activity
        recognition) run inference per frame; acquiring/resetting the GPU
        and re-entering the TEE per frame would waste most of the budget
        for small NNs.  One lock/reset brackets the whole batch; each
        frame pays only input injection + log streaming + output fetch.
        """
        if not inputs:
            return []
        r = self.replayer
        tzasc = r.optee.tzasc
        tzasc.lock_gpu_to_secure()
        if r.clk is not None:
            r.clk.pin_max()
        results: List[ReplayResult] = []
        try:
            r.clock.advance(REPLAY_SETUP_COST_S, label="cpu")
            for frame in inputs:
                t0 = r.clock.now
                timeline_start = len(r.clock.timeline)
                # Each frame starts from reset hardware: the recorded
                # register values (e.g. LATEST_FLUSH epochs) assume it.
                r.gpu.hard_reset_now()
                self._inject_input(frame)
                stats = replay_entries(r.gpu, r.mem, r.clock,
                                       self.recording.entries,
                                       skip_pfns=self.recording.data_pfns)
                output = self._fetch_output()
                self.runs += 1
                meter = EnergyMeter()
                energy = sum(
                    span.duration * (meter.model.idle_w
                                     + {"cpu": meter.model.cpu_w,
                                        "gpu": meter.model.gpu_w
                                        }.get(span.label, 0.0))
                    for span in list(r.clock.timeline)[timeline_start:])
                results.append(ReplayResult(
                    output=output, delay_s=r.clock.now - t0,
                    energy_j=energy, stats=stats))
            r.gpu.hard_reset_now()
        finally:
            if r.clk is not None:
                r.clk.unpin()
            tzasc.release_gpu()
        return results

    def run_streamed(self, input_array: np.ndarray,
                     on_segment=None) -> ReplayResult:
        """Replay segment by segment, invoking ``on_segment(label,
        activation)`` at every layer boundary.  The callback may return
        True to stop early (early-exit inference): the result then holds
        the last completed layer's activation instead of the final output.

        Unlike :meth:`run_prefix`, this streams *one* pass over the log —
        no re-execution of earlier layers per inspection point.
        """
        r = self.replayer
        t0 = r.clock.now
        tzasc = r.optee.tzasc
        tzasc.lock_gpu_to_secure()
        if r.clk is not None:
            r.clk.pin_max()
        timeline_start = len(r.clock.timeline)
        combined = ReplayStats()
        output: Optional[np.ndarray] = None
        try:
            r.gpu.hard_reset_now()
            r.clock.advance(REPLAY_SETUP_COST_S, label="cpu")
            self._inject_input(input_array)
            for label, entries in self.recording.segments():
                stats = replay_entries(r.gpu, r.mem, r.clock, entries,
                                       skip_pfns=self.recording.data_pfns)
                _accumulate(combined, stats)
                if label == "prologue":
                    continue
                binding = self.recording.manifest.binding(f"{label}.out")
                count = int(np.prod(binding.shape))
                output = r.mem.view(binding.pa, (count,), np.float32
                                    ).reshape(binding.shape).copy()
                if on_segment is not None and on_segment(label, output):
                    break
            r.gpu.hard_reset_now()
        finally:
            if r.clk is not None:
                r.clk.unpin()
            tzasc.release_gpu()
        self.runs += 1
        delay = r.clock.now - t0
        meter = EnergyMeter()
        span_energy = sum(
            span.duration * (meter.model.idle_w
                             + {"cpu": meter.model.cpu_w,
                                "gpu": meter.model.gpu_w}.get(span.label, 0.0))
            for span in list(r.clock.timeline)[timeline_start:])
        return ReplayResult(output=output, delay_s=delay,
                            energy_j=span_energy, stats=combined)

    # ------------------------------------------------------------------
    def _execute(self, input_array: np.ndarray, entries, fetch
                 ) -> ReplayResult:
        r = self.replayer
        t0 = r.clock.now
        tzasc = r.optee.tzasc
        tzasc.lock_gpu_to_secure()
        if r.clk is not None:
            r.clk.pin_max()
        timeline_start = len(r.clock.timeline)
        try:
            r.gpu.hard_reset_now()
            r.clock.advance(REPLAY_SETUP_COST_S, label="cpu")
            self._inject_input(input_array)
            stats = replay_entries(r.gpu, r.mem, r.clock, entries,
                                   skip_pfns=self.recording.data_pfns)
            output = fetch()
            r.gpu.hard_reset_now()
        finally:
            if r.clk is not None:
                r.clk.unpin()
            tzasc.release_gpu()
        self.runs += 1
        delay = r.clock.now - t0
        meter = EnergyMeter()
        span_energy = sum(
            span.duration * (meter.model.idle_w
                             + {"cpu": meter.model.cpu_w,
                                "gpu": meter.model.gpu_w}.get(span.label, 0.0))
            for span in list(r.clock.timeline)[timeline_start:])
        return ReplayResult(output=output, delay_s=delay,
                            energy_j=span_energy, stats=stats)
