"""The in-TEE replayer (§2.2, §2.3, §3.2).

The replayer is deliberately tiny — the paper's point is that it replaces
the whole GPU stack with a few KSLoC of log streaming.  It:

1. verifies the recording's signature against the pinned cloud key and its
   SKU fingerprint against the physical GPU (§7.1, §2.4);
2. locks the GPU into the TEE and resets it;
3. injects the confidential data — model weights and the new input — at
   the addresses the manifest records (data never left the TEE, §7.1);
4. streams the interaction log at the GPU: writes are applied, reads are
   matched (polling briefly when hardware needs time to reach the recorded
   value), memory images are installed with *data pages filtered out* so
   injected tensors survive, interrupts are awaited;
5. reads the output tensor from the recorded output address, resets the
   GPU, and releases it to the normal world.

:func:`replay_entries` is the shared engine; misprediction recovery uses
it to fast-forward the client GPU over a validated log prefix (§4.2).
"""

# repro-check: module-allow[bus-confinement] -- the replayer IS the client-side bus: it streams the recorded log at the raw GPU with no driver above it, so there is no shim to confine these accesses to (§3.2)

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.core.config import legacy_replay_env, validate_engine
from repro.obs.metrics import StatsBase
from repro.core.recording import (
    Entry,
    IrqEntry,
    Marker,
    MemUpload,
    MemWrite,
    PollEntry,
    Recording,
    RegRead,
    RegWrite,
    _COND_CODES,
)
from repro.hw.memory import PhysicalMemory
from repro.sim.clock import VirtualClock
from repro.sim.energy import EnergyMeter
from repro.tee.crypto import SigningKey
from repro.tee.optee import OpTeeOS
from repro.tee.worlds import GpuMmioGuard, World

# Replay cost model: the replayer is a log streamer, far cheaper per
# interaction than the runtime+driver path it replaces (Table 2).
REPLAY_REG_ENTRY_COST_S = 0.35e-6
REPLAY_MEM_BANDWIDTH_BPS = 3.0e9
REPLAY_SETUP_COST_S = 0.4e-3
READ_MATCH_TIMEOUT_S = 2.0


class ReplayError(RuntimeError):
    """Replay could not proceed (bad signature, wrong SKU, divergence)."""


class ReplayDivergence(ReplayError):
    """The GPU's behaviour departed from the recording."""


@dataclass
class ReplayStats(StatsBase):
    """Per-run replay counters (merge folds segmented-replay parts)."""

    SCHEMA = "repro.replay"

    entries: int = 0
    reg_writes: int = 0
    reg_reads: int = 0
    read_retries: int = 0
    polls: int = 0
    irq_waits: int = 0
    pages_loaded: int = 0
    pages_skipped: int = 0
    #: How the engine was chosen for this run, e.g. "compiled:beneficial"
    #: or "skipped:low-benefit" (the compile cost model, see
    #: :func:`repro.core.compiled.compile_decision`).  Excluded from
    #: equality so A/B identity gates compare only replay behavior.
    compile_decision: str = field(default="", compare=False)


def legacy_replay_forced() -> bool:
    """True when the deprecated ``REPRO_LEGACY_REPLAY=1`` toggle pins
    the per-entry engine.  New code should pass ``engine="legacy"`` to
    :func:`replay_entries`/:class:`Replayer` instead."""
    return legacy_replay_env()


def replay_entries(gpu, mem: PhysicalMemory, clock: VirtualClock,
                   entries: Sequence[Entry],
                   skip_pfns: Iterable[int] = (),
                   strict: bool = True,
                   program: Optional[list] = None,
                   engine: str = "auto",
                   tracer=None) -> ReplayStats:
    """Stream a log at a GPU.  ``skip_pfns`` protects injected data pages.

    By default (``engine="auto"``) the log is lowered to a compiled
    program (:mod:`repro.core.compiled`) and streamed through the fast
    interpreter; callers replaying the same log repeatedly should pass a
    cached ``program`` to skip the lowering.  The per-entry legacy engine
    is used for devices without bulk-write support (e.g. accelerator
    shims), when ``engine="legacy"`` pins it, or under the deprecated
    ``REPRO_LEGACY_REPLAY=1`` toggle.  ``engine="compiled"`` demands the
    fast path and raises on devices that cannot batch.

    ``tracer`` (a :class:`repro.obs.Tracer`) wraps the whole stream in
    one span — never per-entry work, so tracing cannot slow the hot
    loops.
    """
    validate_engine(engine)
    if engine == "auto" and legacy_replay_env():
        engine = "legacy"
    capable = hasattr(gpu, "write_regs") and hasattr(gpu, "next_event_time")
    if engine == "compiled" and not capable:
        raise ReplayError(
            "engine='compiled' needs a device with bulk register/event "
            "support; this device can only stream per-entry")
    use_legacy = engine == "legacy" or not capable
    if tracer is not None:
        tracer.begin("replay-entries", cat="replay",
                     args={"engine": "legacy" if use_legacy else "compiled",
                           "entries": len(entries)})
    try:
        if use_legacy:
            return _replay_entries_legacy(gpu, mem, clock, entries,
                                          skip_pfns, strict)
        if program is None:
            from repro.core.compiled import compile_entries
            program = compile_entries(entries)
        return _execute_program(gpu, mem, clock, program,
                                frozenset(skip_pfns), strict)
    finally:
        if tracer is not None:
            tracer.end()


def _replay_entries_legacy(gpu, mem: PhysicalMemory, clock: VirtualClock,
                           entries: Sequence[Entry],
                           skip_pfns: Iterable[int] = (),
                           strict: bool = True) -> ReplayStats:
    """The reference per-entry engine: one dataclass at a time."""
    stats = ReplayStats()
    skip = set(skip_pfns)
    for entry in entries:
        stats.entries += 1
        if isinstance(entry, RegWrite):
            clock.advance(REPLAY_REG_ENTRY_COST_S, label="cpu")
            gpu.write_reg(entry.offset, entry.value)
            stats.reg_writes += 1
        elif isinstance(entry, RegRead):
            clock.advance(REPLAY_REG_ENTRY_COST_S, label="cpu")
            stats.reg_reads += 1
            value = gpu.read_reg(entry.offset)
            if value != entry.value:
                _match_read(gpu, clock, entry.offset, entry.value, value,
                            stats, strict)
        elif isinstance(entry, PollEntry):
            stats.polls += 1
            _replay_poll(gpu, clock, entry.offset,
                         _COND_CODES[entry.condition], entry.operand,
                         entry.iterations, strict)
        elif isinstance(entry, IrqEntry):
            stats.irq_waits += 1
            _await_irq(gpu, clock, entry.line, strict)
        elif isinstance(entry, MemWrite):
            loaded = 0
            for pfn, raw in entry.pages:
                if pfn in skip:
                    stats.pages_skipped += 1
                    continue
                mem.write_page(pfn, raw)
                loaded += 1
            stats.pages_loaded += loaded
            clock.advance(loaded * 4096 / REPLAY_MEM_BANDWIDTH_BPS,
                          label="cpu")
        elif isinstance(entry, (MemUpload, Marker)):
            continue
        else:
            raise ReplayError(f"unknown entry {entry!r}")
    return stats


def _execute_program(gpu, mem: PhysicalMemory, clock: VirtualClock,
                     program: list, skip_key: frozenset,
                     strict: bool) -> ReplayStats:
    """Stream a compiled program (:mod:`repro.core.compiled`) at the GPU.

    Observable behaviour is identical to the legacy engine: write batches
    advance the clock through the *same sequence* of float additions the
    per-entry path would perform (so ``clock.now`` stays bit-identical),
    and a batch whose virtual-time window contains a pending GPU event
    falls back to per-entry replay so event servicing interleaves exactly
    as recorded.
    """
    from repro.core.compiled import (
        OBS_READ,
        OP_IRQ,
        OP_MEMW,
        OP_NOOP,
        OP_OBS,
        OP_POLL,
        OP_READ,
        OP_WBATCH,
        OP_WRITE,
    )
    stats = ReplayStats()
    if not skip_key:
        skip_key = None
    cost = REPLAY_REG_ENTRY_COST_S
    advance = clock.advance
    write_reg = gpu.write_reg
    read_reg = gpu.read_reg
    write_regs = gpu.write_regs
    read_regs = gpu.read_regs
    next_event_time = gpu.next_event_time
    for op in program:
        code = op[0]
        if code == OP_OBS:
            _, offsets, items, n_reads = op
            n = len(items)
            stats.entries += n
            # End-of-batch time via the same chain of rounded additions
            # the per-entry path performs (polls do not advance).
            t = clock.now
            for _ in range(n_reads):
                t += cost
            nev = next_event_time()
            committed = False
            if nev is None or nev > t + 1e-12:
                # No GPU event can fire inside the window, so register
                # state is constant across it: one batch read at the
                # window start observes what n per-entry reads would.
                values = read_regs(offsets)
                for i in range(n):
                    item = items[i]
                    if item[0] == OBS_READ:
                        if values[i] != item[2]:
                            break
                    elif not _poll_satisfied(item[2], values[i], item[3]):
                        break
                else:
                    committed = True
                    stats.reg_reads += n_reads
                    stats.polls += n - n_reads
                    clock.advance_to(t, label="cpu")
            if not committed:
                # Event due mid-window or an observation missed its
                # recorded value: replay the run exactly as the legacy
                # engine would (reads are side-effect free, so the
                # speculative batch read above changed nothing).
                for item in items:
                    if item[0] == OBS_READ:
                        advance(cost, label="cpu")
                        stats.reg_reads += 1
                        value = read_reg(item[1])
                        if value != item[2]:
                            _match_read(gpu, clock, item[1], item[2],
                                        value, stats, strict)
                    else:
                        stats.polls += 1
                        _replay_poll(gpu, clock, item[1], item[2],
                                     item[3], item[5], strict)
        elif code == OP_WBATCH:
            _, offsets, values, n = op
            # Reproduce the per-entry clock trajectory bit for bit: the
            # batch's end time is the same chain of rounded additions.
            t = clock.now
            for _ in range(n):
                t += cost
            nev = next_event_time()
            if nev is not None and nev <= t + 1e-12:
                # An internal event falls due inside the batch window:
                # only exact per-entry interleaving is faithful.
                for offset, value in zip(offsets, values):
                    advance(cost, label="cpu")
                    write_reg(offset, value)
            else:
                clock.advance_to(t, label="cpu")
                write_regs(offsets, values)
            stats.entries += n
            stats.reg_writes += n
        elif code == OP_READ:
            _, offset, expected = op
            advance(cost, label="cpu")
            stats.entries += 1
            stats.reg_reads += 1
            value = read_reg(offset)
            if value != expected:
                _match_read(gpu, clock, offset, expected, value,
                            stats, strict)
        elif code == OP_POLL:
            _, offset, cond, operand, _expected, iterations = op
            stats.entries += 1
            stats.polls += 1
            _replay_poll(gpu, clock, offset, cond, operand, iterations,
                         strict)
        elif code == OP_WRITE:
            _, offset, value = op
            advance(cost, label="cpu")
            write_reg(offset, value)
            stats.entries += 1
            stats.reg_writes += 1
        elif code == OP_IRQ:
            stats.entries += 1
            stats.irq_waits += 1
            _await_irq(gpu, clock, op[1], strict)
        elif code == OP_MEMW:
            pfns, pages, skipped = op[1].select(skip_key)
            n = len(pfns)
            if n:
                mem.write_pages(pfns, pages)
            stats.pages_loaded += n
            stats.pages_skipped += skipped
            stats.entries += 1
            advance(n * 4096 / REPLAY_MEM_BANDWIDTH_BPS, label="cpu")
        elif code == OP_NOOP:
            stats.entries += op[1]
        else:
            raise ReplayError(f"unknown opcode {code}")
    return stats


def _match_read(gpu, clock: VirtualClock, offset: int, expected: int,
                value: int, stats: ReplayStats, strict: bool) -> None:
    """Read until the recorded value appears (hardware may still be in a
    transition the recorded driver had already waited out)."""
    deadline = clock.now + READ_MATCH_TIMEOUT_S
    while value != expected:
        next_event = gpu.next_event_time()
        if next_event is None or next_event > deadline:
            if strict:
                raise ReplayDivergence(
                    f"read of reg {offset:#x} stuck at {value:#x}, "
                    f"recording expects {expected:#x}")
            return
        clock.advance_to(next_event, label="gpu")
        gpu.service()
        stats.read_retries += 1
        value = gpu.read_reg(offset)


_COND_BITS_CLEAR = _COND_CODES["bits_clear"]
_COND_BITS_SET = _COND_CODES["bits_set"]
_COND_NAMES_BY_CODE = {v: k for k, v in _COND_CODES.items()}


def _poll_satisfied(cond: int, value: int, operand: int) -> bool:
    if cond == _COND_BITS_CLEAR:
        return (value & operand) == 0
    if cond == _COND_BITS_SET:
        return (value & operand) == operand
    return value == operand  # equals


def _replay_poll(gpu, clock: VirtualClock, offset: int, cond: int,
                 operand: int, recorded_iters: int, strict: bool) -> None:
    max_iters = max(recorded_iters * 4, 64)
    value = gpu.read_reg(offset)
    iterations = 1
    while not _poll_satisfied(cond, value, operand) \
            and iterations < max_iters:
        next_event = gpu.next_event_time()
        if next_event is None:
            break
        clock.advance_to(next_event, label="gpu")
        gpu.service()
        value = gpu.read_reg(offset)
        iterations += 1
    if strict and not _poll_satisfied(cond, value, operand):
        raise ReplayDivergence(
            f"poll on reg {offset:#x} never satisfied "
            f"({_COND_NAMES_BY_CODE[cond]} {operand:#x}); "
            f"last value {value:#x}")


def _await_irq(gpu, clock: VirtualClock, line: str, strict: bool) -> None:
    deadline = clock.now + READ_MATCH_TIMEOUT_S * 4
    while not gpu.irq_pending(line):
        next_event = gpu.next_event_time()
        if next_event is None or next_event > deadline:
            if strict:
                raise ReplayDivergence(
                    f"recorded {line} interrupt never arrived")
            return
        clock.advance_to(next_event, label="gpu")
        gpu.service()


@dataclass
class ReplayResult:
    output: np.ndarray
    delay_s: float
    energy_j: float
    stats: ReplayStats


class Replayer:
    """The TEE-resident replayer serving one client device."""

    def __init__(self, optee: OpTeeOS, gpu, mem: PhysicalMemory,
                 clock: VirtualClock, verify_key: SigningKey,
                 clk=None, compiled_cache=None,
                 tenant_id: str = "local", engine: str = "auto",
                 tracer=None) -> None:
        self.optee = optee
        self.gpu_raw = gpu
        self.gpu = GpuMmioGuard(gpu, optee.tzasc, World.SECURE)
        self.mem = mem
        self.clock = clock
        self.verify_key = verify_key
        # Optional SoC clock controller, pinned during replay (§6).
        self.clk = clk
        # One meter for the replayer's lifetime: the power model is
        # immutable, so there is nothing per-frame about it.
        self.meter = EnergyMeter()
        # Optional digest-keyed compiled-program cache (the fleet
        # registry), so repeated sessions share one lowering.
        self.compiled_cache = compiled_cache
        self.tenant_id = tenant_id
        # Explicit engine choice replaces the REPRO_LEGACY_REPLAY env
        # toggle; "auto" still honors the deprecated env var.
        self.engine = validate_engine(engine)
        # Optional repro.obs.Tracer; every hook is None-guarded so the
        # untraced path stays on the fast loops.
        self.tracer = tracer

    # ------------------------------------------------------------------
    def compiled_for(self, recording: Recording):
        """The recording's compiled form, via the shared cache if one is
        attached (keyed per tenant + content digest), else per-object."""
        if self.compiled_cache is not None:
            return self.compiled_cache.compiled_for(
                self.tenant_id, recording.digest(), recording.compile,
                recording=recording)
        return recording.compile()

    def span_energy_since(self, timeline_start: int) -> float:
        """Energy (J) of the timeline spans appended since
        ``timeline_start``, under the replayer's power model."""
        model = self.meter.model
        extra = {"cpu": model.cpu_w, "gpu": model.gpu_w}
        return sum(
            duration * (model.idle_w + extra.get(label, 0.0))
            for label, duration in
            self.clock.timeline.label_totals_since(timeline_start).items())

    # ------------------------------------------------------------------
    def load(self, blob: bytes) -> Recording:
        """Verify and parse a downloaded recording (§7.1: the replayer
        only accepts recordings signed by the cloud)."""
        return Recording.from_bytes(blob, verify_key=self.verify_key)

    def check_sku(self, recording: Recording) -> None:
        fp = self.gpu_raw.sku.fingerprint()
        if tuple(recording.sku_fingerprint) != tuple(fp):
            raise ReplayError(
                f"recording bound to SKU fingerprint "
                f"{recording.sku_fingerprint}, device is {fp} (§2.4: even "
                f"subtle SKU differences break replay)")

    # ------------------------------------------------------------------
    def open(self, recording: Recording,
             weights: Optional[Dict[str, np.ndarray]] = None
             ) -> "ReplaySession":
        """Prepare a replay session: verify the SKU binding and install
        model parameters once.  Weights stay resident in TEE memory across
        inferences (the per-inference cost of Table 2 covers only input
        injection + log streaming + output fetch)."""
        self.check_sku(recording)
        session = ReplaySession(self, recording)
        session.install_weights(weights)
        return session

    def replay(self, recording: Recording, input_array: np.ndarray,
               weights: Optional[Dict[str, np.ndarray]] = None
               ) -> ReplayResult:
        """Convenience one-shot: open + run."""
        return self.open(recording, weights).run(input_array)


class ReplaySession:
    """One recording opened for repeated inference inside the TEE."""

    def __init__(self, replayer: Replayer, recording: Recording) -> None:
        self.replayer = replayer
        self.recording = recording
        self.runs = 0
        self._compiled = None            # lazily bound CompiledRecording
        self._decision = ""              # engine-choice label for stats
        self._prefix_programs: Dict[str, list] = {}

    def _compiled_recording(self):
        """The compiled form, or None when the legacy engine is selected
        (explicitly, via the deprecated env toggle, or by the compile
        cost model) or the device cannot batch (then entries are
        streamed per-entry).

        Under ``engine="auto"`` the compile cost model
        (:func:`repro.core.compiled.compile_decision`) is consulted
        first: recordings whose predicted compiled-replay benefit is
        below threshold (e.g. mnist, measured 1.03×) replay through the
        interpreter and never pay the compile — or publish to the
        artifact store.  ``engine="compiled"`` always compiles.
        """
        engine = self.replayer.engine
        if engine == "legacy":
            self._decision = "legacy:explicit"
            return None
        if engine == "auto" and legacy_replay_env():
            self._decision = "legacy:env"
            return None
        if engine == "auto":
            decision = self.recording.compile_decision()
            if not decision.use_compiled:
                self._decision = f"skipped:{decision.reason}"
                return None
            self._decision = f"compiled:{decision.reason}"
        else:
            self._decision = "compiled:forced"
        if self._compiled is None:
            self._compiled = self.replayer.compiled_for(self.recording)
        return self._compiled

    # ------------------------------------------------------------------
    def install_weights(self, weights: Optional[Dict[str, np.ndarray]]
                        ) -> None:
        """Write model parameters to the recorded weight addresses (§7.1:
        they never leave the TEE)."""
        r = self.replayer
        manifest = self.recording.manifest
        total = 0
        for wb in manifest.weight_bindings():
            if weights is None or wb.name not in weights:
                raise ReplayError(f"missing weights for {wb.name!r}")
            array = np.ascontiguousarray(weights[wb.name], dtype=np.float32)
            if array.nbytes > wb.size:
                raise ReplayError(
                    f"weights {wb.name!r} overflow the recorded buffer")
            r.mem.write_array(wb.pa, array)
            total += array.nbytes
        r.clock.advance(total / REPLAY_MEM_BANDWIDTH_BPS, label="cpu")

    def _inject_input(self, input_array: np.ndarray) -> None:
        r = self.replayer
        binding = self.recording.manifest.binding("input")
        expected = tuple(binding.shape)
        if tuple(input_array.shape) != expected:
            raise ReplayError(
                f"input shape {input_array.shape} != recorded {expected}")
        r.mem.write_array(binding.pa, input_array.astype(np.float32))
        r.clock.advance(input_array.nbytes / REPLAY_MEM_BANDWIDTH_BPS,
                        label="cpu")

    def _fetch_output(self) -> np.ndarray:
        r = self.replayer
        binding = self.recording.manifest.binding("output")
        count = int(np.prod(binding.shape))
        return r.mem.view(binding.pa, (count,),
                          np.float32).reshape(binding.shape).copy()

    # ------------------------------------------------------------------
    def run(self, input_array: np.ndarray) -> ReplayResult:
        """One inference: lock GPU, reset, stream the log, fetch output."""
        compiled = self._compiled_recording()
        return self._execute(input_array, self.recording.entries,
                             self._fetch_output,
                             program=compiled.full_program
                             if compiled is not None else None)

    # ------------------------------------------------------------------
    # Segmented replay (Figure 2): recordings split at layer markers
    # ------------------------------------------------------------------
    def segment_labels(self) -> List[str]:
        """Layer labels of the recording's segments, in replay order."""
        return [label for label, _ in self.recording.segments()]

    def run_prefix(self, input_array: np.ndarray, upto: str) -> ReplayResult:
        """Replay only through the segment labelled ``upto`` and return
        that layer's activation — the per-layer recording granularity of
        Figure 2 (composability at the cost of a partial run)."""
        segments = self.recording.segments()
        labels = [label for label, _ in segments]
        if upto not in labels:
            raise ReplayError(
                f"no segment labelled {upto!r}; have {labels[1:]}")
        entries: List[Entry] = []
        for label, seg in segments:
            entries.extend(seg)
            if label == upto:
                break
        binding = self.recording.manifest.binding(f"{upto}.out")

        def fetch() -> np.ndarray:
            count = int(np.prod(binding.shape))
            return self.replayer.mem.view(
                binding.pa, (count,), np.float32
            ).reshape(binding.shape).copy()

        return self._execute(input_array, entries, fetch,
                             program=self._prefix_program(upto))

    def _prefix_program(self, upto: str) -> Optional[list]:
        """Concatenated segment programs through ``upto`` (markers are
        not part of segment entry lists, matching the legacy prefix)."""
        compiled = self._compiled_recording()
        if compiled is None:
            return None
        program = self._prefix_programs.get(upto)
        if program is None:
            program = []
            for label, seg_program in compiled.segment_programs:
                program.extend(seg_program)
                if label == upto:
                    break
            self._prefix_programs[upto] = program
        return program

    def run_batch(self, inputs: Sequence[np.ndarray]) -> List[ReplayResult]:
        """Replay many inputs back to back under one GPU acquisition.

        The paper's motivating apps (video analytics, activity
        recognition) run inference per frame; acquiring/resetting the GPU
        and re-entering the TEE per frame would waste most of the budget
        for small NNs.  One lock/reset brackets the whole batch; each
        frame pays only input injection + log streaming + output fetch.
        """
        if not inputs:
            return []
        r = self.replayer
        compiled = self._compiled_recording()
        program = compiled.full_program if compiled is not None else None
        tzasc = r.optee.tzasc
        tzasc.lock_gpu_to_secure()
        if r.clk is not None:
            r.clk.pin_max()
        results: List[ReplayResult] = []
        tracer = r.tracer
        try:
            r.clock.advance(REPLAY_SETUP_COST_S, label="cpu")
            for frame in inputs:
                t0 = r.clock.now
                timeline_start = len(r.clock.timeline)
                if tracer is not None:
                    tracer.begin("replay-frame", cat="session",
                                 args={"run": self.runs})
                # Each frame starts from reset hardware: the recorded
                # register values (e.g. LATEST_FLUSH epochs) assume it.
                r.gpu.hard_reset_now()
                self._inject_input(frame)
                stats = replay_entries(r.gpu, r.mem, r.clock,
                                       self.recording.entries,
                                       skip_pfns=self.recording.data_pfns,
                                       program=program,
                                       engine=r.engine, tracer=tracer)
                output = self._fetch_output()
                if tracer is not None:
                    tracer.end(args={"entries": stats.entries})
                self.runs += 1
                stats.compile_decision = self._decision
                results.append(ReplayResult(
                    output=output, delay_s=r.clock.now - t0,
                    energy_j=r.span_energy_since(timeline_start),
                    stats=stats))
            r.gpu.hard_reset_now()
        finally:
            if r.clk is not None:
                r.clk.unpin()
            tzasc.release_gpu()
        return results

    def run_streamed(self, input_array: np.ndarray,
                     on_segment=None) -> ReplayResult:
        """Replay segment by segment, invoking ``on_segment(label,
        activation)`` at every layer boundary.  The callback may return
        True to stop early (early-exit inference): the result then holds
        the last completed layer's activation instead of the final output.

        Unlike :meth:`run_prefix`, this streams *one* pass over the log —
        no re-execution of earlier layers per inspection point.
        """
        r = self.replayer
        compiled = self._compiled_recording()
        t0 = r.clock.now
        tzasc = r.optee.tzasc
        tzasc.lock_gpu_to_secure()
        if r.clk is not None:
            r.clk.pin_max()
        timeline_start = len(r.clock.timeline)
        combined = ReplayStats()
        output: Optional[np.ndarray] = None
        tracer = r.tracer
        if tracer is not None:
            tracer.begin("replay-streamed", cat="session",
                         args={"run": self.runs})
        try:
            r.gpu.hard_reset_now()
            r.clock.advance(REPLAY_SETUP_COST_S, label="cpu")
            self._inject_input(input_array)
            segments = self.recording.segments()
            programs = (compiled.segment_programs
                        if compiled is not None else [None] * len(segments))
            for (label, entries), seg_program in zip(segments, programs):
                if tracer is not None:
                    tracer.begin(label, cat="segment")
                stats = replay_entries(
                    r.gpu, r.mem, r.clock, entries,
                    skip_pfns=self.recording.data_pfns,
                    program=seg_program[1]
                    if seg_program is not None else None,
                    engine=r.engine, tracer=tracer)
                combined.merge(stats)
                if tracer is not None:
                    tracer.end(args={"entries": stats.entries})
                if label == "prologue":
                    continue
                binding = self.recording.manifest.binding(f"{label}.out")
                count = int(np.prod(binding.shape))
                output = r.mem.view(binding.pa, (count,), np.float32
                                    ).reshape(binding.shape).copy()
                if on_segment is not None and on_segment(label, output):
                    break
            r.gpu.hard_reset_now()
        finally:
            if tracer is not None:
                tracer.end(args={"entries": combined.entries})
            if r.clk is not None:
                r.clk.unpin()
            tzasc.release_gpu()
        self.runs += 1
        delay = r.clock.now - t0
        combined.compile_decision = self._decision
        return ReplayResult(output=output, delay_s=delay,
                            energy_j=r.span_energy_since(timeline_start),
                            stats=combined)

    # ------------------------------------------------------------------
    def _execute(self, input_array: np.ndarray, entries, fetch,
                 program: Optional[list] = None) -> ReplayResult:
        r = self.replayer
        t0 = r.clock.now
        tzasc = r.optee.tzasc
        tzasc.lock_gpu_to_secure()
        if r.clk is not None:
            r.clk.pin_max()
        timeline_start = len(r.clock.timeline)
        tracer = r.tracer
        if tracer is not None:
            tracer.begin("replay", cat="session", args={"run": self.runs})
        try:
            r.gpu.hard_reset_now()
            r.clock.advance(REPLAY_SETUP_COST_S, label="cpu")
            self._inject_input(input_array)
            stats = replay_entries(r.gpu, r.mem, r.clock, entries,
                                   skip_pfns=self.recording.data_pfns,
                                   program=program,
                                   engine=r.engine, tracer=tracer)
            output = fetch()
            r.gpu.hard_reset_now()
        finally:
            if tracer is not None:
                tracer.end()
            if r.clk is not None:
                r.clk.unpin()
            tzasc.release_gpu()
        self.runs += 1
        delay = r.clock.now - t0
        stats.compile_decision = self._decision
        return ReplayResult(output=output, delay_s=delay,
                            energy_j=r.span_energy_since(timeline_start),
                            stats=stats)
