"""Sanctioned environment/configuration reads for :mod:`repro.core`.

Core modules must not read ``os.environ`` directly — configuration
enters through explicit parameters (``engine="compiled"|"legacy"`` on
the replayer/API) so behavior is visible at the call site and A/B
harnesses don't have to mutate global state.  The ``repro check``
``env-read`` rule enforces this; this module is the one sanctioned
exception, kept for backwards compatibility with the deprecated
``REPRO_LEGACY_REPLAY`` toggle.
"""

from __future__ import annotations

import os
import warnings

#: Replay engine selectors accepted by the replayer and the facade.
ENGINES = ("auto", "compiled", "legacy")

_warned_legacy_env = False


def legacy_replay_env() -> bool:
    """True if the deprecated ``REPRO_LEGACY_REPLAY=1`` toggle is set.

    Emits a one-time :class:`DeprecationWarning` pointing at the
    ``engine="legacy"`` parameter that replaced it.  Still honored so
    existing scripts keep working.
    """
    if os.environ.get("REPRO_LEGACY_REPLAY") != "1":
        return False
    global _warned_legacy_env
    if not _warned_legacy_env:
        warnings.warn(
            "REPRO_LEGACY_REPLAY is deprecated; pass engine='legacy' to "
            "repro.replay()/Replayer/replay_entries instead",
            DeprecationWarning, stacklevel=3)
        _warned_legacy_env = True
    return True


_warned_store_env = False


def store_env():
    """Path from the transitional ``REPRO_STORE`` variable, or ``None``.

    Honored so pre-``store=`` scripts can point every run at one
    artifact store, but — like ``REPRO_LEGACY_REPLAY`` — it emits a
    one-time :class:`DeprecationWarning` steering callers to the
    explicit ``store=`` / ``--store`` parameter, which keeps the cache
    location visible at the call site.
    """
    path = os.environ.get("REPRO_STORE", "").strip()
    if not path:
        return None
    global _warned_store_env
    if not _warned_store_env:
        warnings.warn(
            "REPRO_STORE is a transitional toggle; pass store=PATH to "
            "repro.replay()/serve (or --store on the CLI) instead",
            DeprecationWarning, stacklevel=3)
        _warned_store_env = True
    return path


def validate_engine(engine: str) -> str:
    if engine not in ENGINES:
        raise ValueError(
            f"engine must be one of {ENGINES}, got {engine!r}")
    return engine
