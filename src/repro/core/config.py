"""Sanctioned environment/configuration reads for :mod:`repro.core`.

Core modules must not read ``os.environ`` directly — configuration
enters through explicit parameters (``engine="compiled"|"legacy"`` on
the replayer/API) so behavior is visible at the call site and A/B
harnesses don't have to mutate global state.  The ``repro check``
``env-read`` rule enforces this; this module is the one sanctioned
exception, kept for backwards compatibility with the deprecated
``REPRO_LEGACY_REPLAY`` toggle.
"""

from __future__ import annotations

import os
import warnings

#: Replay engine selectors accepted by the replayer and the facade.
ENGINES = ("auto", "compiled", "legacy")

_warned_legacy_env = False


def legacy_replay_env() -> bool:
    """True if the deprecated ``REPRO_LEGACY_REPLAY=1`` toggle is set.

    Emits a one-time :class:`DeprecationWarning` pointing at the
    ``engine="legacy"`` parameter that replaced it.  Still honored so
    existing scripts keep working.
    """
    if os.environ.get("REPRO_LEGACY_REPLAY") != "1":
        return False
    global _warned_legacy_env
    if not _warned_legacy_env:
        warnings.warn(
            "REPRO_LEGACY_REPLAY is deprecated; pass engine='legacy' to "
            "repro.replay()/Replayer/replay_entries instead",
            DeprecationWarning, stacklevel=3)
        _warned_legacy_env = True
    return True


def validate_engine(engine: str) -> str:
    if engine not in ENGINES:
        raise ValueError(
            f"engine must be one of {ENGINES}, got {engine!r}")
    return engine
