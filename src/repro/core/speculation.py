"""Commit-history speculation (§4.2).

DriverShim predicts the read values a commit will return by consulting the
history of commits with the same signature at the same driver location.
Prediction is *conservative*: only when the most recent ``k`` historical
instances returned identical value sequences (k=3 in the paper and here).

History survives across workloads — §7.3 runs all six benchmarks "with
retaining register access history in between", which is why Init/Power
commits of later workloads speculate from the first workload's history.

Validation compares predicted against actual when the asynchronous commit
completes; a mismatch raises :class:`MispredictionDetected` carrying the
last-validated log position, from which recovery replays (§4.2).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.symbolic import SymVal
from repro.obs.metrics import StatsBase

DEFAULT_SPEC_WINDOW = 3


class MispredictionDetected(Exception):
    """A speculated commit returned values different from the prediction."""

    def __init__(self, signature: Tuple, predicted: Tuple, actual: Tuple,
                 safe_log_position: int) -> None:
        super().__init__(
            f"misprediction: predicted {predicted} got {actual}; "
            f"rolling back to log position {safe_log_position}"
        )
        self.signature = signature
        self.predicted = predicted
        self.actual = actual
        self.safe_log_position = safe_log_position


class CommitHistory:
    """Recent read-value sequences per commit signature."""

    def __init__(self, window: int = DEFAULT_SPEC_WINDOW) -> None:
        if window < 1:
            raise ValueError("speculation window must be >= 1")
        self.window = window
        self._history: Dict[Tuple, Deque[Tuple]] = {}
        # Optional repro.obs.Tracer; prediction hit/miss events let a
        # trace explain *why* a commit went synchronous (§4.2).
        self.tracer = None

    def record(self, signature: Tuple, values: Tuple) -> None:
        self._history.setdefault(
            signature, deque(maxlen=self.window)).append(tuple(values))

    def predict(self, signature: Tuple) -> Optional[Tuple]:
        """The unanimous value sequence of the last ``window`` instances,
        or None if history is short or disagrees (§4.2's criteria)."""
        prediction = self._predict(signature)
        if self.tracer is not None:
            self.tracer.event("predict", cat="speculation",
                              args={"hit": prediction is not None})
        return prediction

    def _predict(self, signature: Tuple) -> Optional[Tuple]:
        seen = self._history.get(signature)
        if seen is None or len(seen) < self.window:
            return None
        first = seen[0]
        if all(v == first for v in seen):
            return first
        return None

    def instances(self, signature: Tuple) -> int:
        return len(self._history.get(signature, ()))

    def snapshot(self) -> Dict[Tuple, Tuple[Tuple, ...]]:
        """Immutable copy of the history, for session checkpoints: the
        history lives in the cloud VM and dies with it, so a resumable
        checkpoint must carry it (§4.2 across reconnects)."""
        return {sig: tuple(vals) for sig, vals in self._history.items()}

    def restore(self, snap: Dict[Tuple, Tuple[Tuple, ...]]) -> None:
        """Replace the history with a snapshot, in place (the object may
        be shared across warm-up sessions)."""
        self._history = {
            sig: deque(vals, maxlen=self.window) for sig, vals in snap.items()
        }

    def __len__(self) -> int:
        return len(self._history)


@dataclass
class OutstandingCommit:
    """An asynchronous (speculated) commit awaiting validation."""

    signature: Tuple
    category: str
    predicted: Tuple
    actual: Tuple
    completion_time: float
    read_syms: List[SymVal]
    safe_log_position: int

    def validate(self) -> None:
        if self.actual != self.predicted:
            raise MispredictionDetected(
                self.signature, self.predicted, self.actual,
                self.safe_log_position)
        for sym in self.read_syms:
            sym.untaint()


@dataclass
class SpeculationStats(StatsBase):
    """What Figure 8 and §7.3 report about commits."""

    SCHEMA = "repro.speculation"

    commits_total: int = 0
    commits_speculated: int = 0
    commits_synchronous: int = 0
    commits_by_category: Dict[str, int] = field(default_factory=dict)
    speculated_by_category: Dict[str, int] = field(default_factory=dict)
    reads_speculated: int = 0
    reads_total: int = 0
    validation_stalls: int = 0
    mispredictions: int = 0
    polls_offloaded: int = 0
    polls_speculated: int = 0
    tainted_commit_stalls: int = 0

    def note_commit(self, category: str, speculated: bool, reads: int) -> None:
        self.commits_total += 1
        self.reads_total += reads
        self.commits_by_category[category] = (
            self.commits_by_category.get(category, 0) + 1)
        if speculated:
            self.commits_speculated += 1
            self.reads_speculated += reads
            self.speculated_by_category[category] = (
                self.speculated_by_category.get(category, 0) + 1)
        else:
            self.commits_synchronous += 1

    @property
    def speculation_rate(self) -> float:
        if self.commits_total == 0:
            return 0.0
        return self.commits_speculated / self.commits_total
