"""Recovery experiment drivers: misprediction (§7.3) and disconnect.

The paper observed no natural mispredictions in 1,000 runs per workload,
so it *injects* wrong register values to validate the recovery path.  This
module packages that experiment: run a workload cleanly, run it again with
a fault injected near the end of the record run (the worst case), verify
the misprediction was detected and recovered, and report the rollback
cost as the delay difference.

:func:`run_disconnect_recovery_experiment` is the WAN counterpart: the
same replay-based reset machinery, but triggered by a link disconnect
(:mod:`repro.resilience`) instead of a wrong speculation — the session
resumes from its last commit-log checkpoint and the recording must come
out byte-identical to the clean run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.recorder import OURS_MDS, RecorderConfig, RecordSession
from repro.core.speculation import CommitHistory
from repro.hw.sku import GpuSku, HIKEY960_G71
from repro.sim.network import LinkProfile, WIFI


@dataclass
class MispredictionReport:
    workload: str
    clean_delay_s: float
    injected_delay_s: float
    rollback_cost_s: float
    detected: bool
    recoveries: int
    injected_read_index: int


def _warm_history(workload: str, config: RecorderConfig, sku: GpuSku,
                  link: LinkProfile, rounds: int) -> CommitHistory:
    history = CommitHistory(config.spec_window)
    for _ in range(rounds):
        RecordSession(workload, config=config, sku=sku,
                      link_profile=link, history=history).run()
    return history


def run_misprediction_experiment(
        workload: str,
        config: RecorderConfig = OURS_MDS,
        sku: GpuSku = HIKEY960_G71,
        link: LinkProfile = WIFI,
        fault_read_fraction: float = 0.9,
        warm_rounds: int = 3) -> MispredictionReport:
    """Inject a wrong register value late in the run and measure recovery.

    ``fault_read_fraction`` places the corruption at that fraction of the
    run's register reads (0.9 approximates the paper's worst case —
    misprediction at the end of a record run)."""
    history = _warm_history(workload, config, sku, link, warm_rounds)

    clean = RecordSession(workload, config=config, sku=sku,
                          link_profile=link, history=history).run()
    total_reads = clean.stats.client_reads_applied
    target = max(1, int(total_reads * fault_read_fraction))

    # If the chosen read happens to sit in a non-speculated commit the
    # corruption is consumed synchronously and nothing mispredicts; walk
    # forward until the injection lands on a speculated read.
    injected = None
    candidates = list(range(target, min(target + 50, total_reads)))
    candidates += list(range(max(target - 50, 1), target))
    for candidate in candidates:
        session = RecordSession(workload, config=config, sku=sku,
                                link_profile=link, history=history)
        session.inject_fault_at_read(candidate)
        result = session.run()
        if result.stats.recoveries > 0:
            injected = result
            target = candidate
            break
    if injected is None:
        raise RuntimeError(
            "fault injection never triggered a misprediction — "
            "speculation appears inactive")

    return MispredictionReport(
        workload=workload,
        clean_delay_s=clean.stats.recording_delay_s,
        injected_delay_s=injected.stats.recording_delay_s,
        rollback_cost_s=(injected.stats.recording_delay_s
                         - clean.stats.recording_delay_s),
        detected=True,
        recoveries=injected.stats.recoveries,
        injected_read_index=target,
    )


@dataclass
class DisconnectRecoveryReport:
    workload: str
    plan: str
    clean_delay_s: float
    faulty_delay_s: float
    recovery_cost_s: float
    resumes: int
    checkpoints: int
    byte_identical: bool


def run_disconnect_recovery_experiment(
        workload: str,
        plan=None,
        config: RecorderConfig = OURS_MDS,
        sku: GpuSku = HIKEY960_G71,
        link: LinkProfile = WIFI,
        warm_rounds: int = 3) -> DisconnectRecoveryReport:
    """Disconnect the link mid-run, resume from the checkpoint, and
    measure the recovery cost as the delay difference vs. a clean run.

    Both runs start from the same warmed history state (the disconnect
    run restores the clean run's starting snapshot), so the comparison —
    and the byte-identity claim — is apples to apples."""
    from repro.resilience.faults import PRESETS

    if plan is None:
        plan = PRESETS["disconnect"]
    history = _warm_history(workload, config, sku, link, warm_rounds)
    snapshot = history.snapshot()

    clean = RecordSession(workload, config=config, sku=sku,
                          link_profile=link, history=history).run()

    resumed_history = CommitHistory(config.spec_window)
    resumed_history.restore(snapshot)
    faulty = RecordSession(workload, config=config, sku=sku,
                           link_profile=link, history=resumed_history,
                           fault_plan=plan).run()
    if faulty.stats.resumes == 0:
        raise RuntimeError(
            f"plan {plan.name!r} never disconnected {workload} — move its "
            "window into the session's shim traffic")

    return DisconnectRecoveryReport(
        workload=workload,
        plan=plan.name,
        clean_delay_s=clean.stats.recording_delay_s,
        faulty_delay_s=faulty.stats.recording_delay_s,
        recovery_cost_s=(faulty.stats.recording_delay_s
                         - clean.stats.recording_delay_s),
        resumes=faulty.stats.resumes,
        checkpoints=faulty.stats.checkpoints,
        byte_identical=(faulty.recording.body_bytes()
                        == clean.recording.body_bytes()),
    )
