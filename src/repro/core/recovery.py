"""Misprediction recovery experiment driver (§7.3, "Misprediction cost").

The paper observed no natural mispredictions in 1,000 runs per workload,
so it *injects* wrong register values to validate the recovery path.  This
module packages that experiment: run a workload cleanly, run it again with
a fault injected near the end of the record run (the worst case), verify
the misprediction was detected and recovered, and report the rollback
cost as the delay difference.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.recorder import OURS_MDS, RecorderConfig, RecordSession
from repro.core.speculation import CommitHistory
from repro.hw.sku import GpuSku, HIKEY960_G71
from repro.sim.network import LinkProfile, WIFI


@dataclass
class MispredictionReport:
    workload: str
    clean_delay_s: float
    injected_delay_s: float
    rollback_cost_s: float
    detected: bool
    recoveries: int
    injected_read_index: int


def _warm_history(workload: str, config: RecorderConfig, sku: GpuSku,
                  link: LinkProfile, rounds: int) -> CommitHistory:
    history = CommitHistory(config.spec_window)
    for _ in range(rounds):
        RecordSession(workload, config=config, sku=sku,
                      link_profile=link, history=history).run()
    return history


def run_misprediction_experiment(
        workload: str,
        config: RecorderConfig = OURS_MDS,
        sku: GpuSku = HIKEY960_G71,
        link: LinkProfile = WIFI,
        fault_read_fraction: float = 0.9,
        warm_rounds: int = 3) -> MispredictionReport:
    """Inject a wrong register value late in the run and measure recovery.

    ``fault_read_fraction`` places the corruption at that fraction of the
    run's register reads (0.9 approximates the paper's worst case —
    misprediction at the end of a record run)."""
    history = _warm_history(workload, config, sku, link, warm_rounds)

    clean = RecordSession(workload, config=config, sku=sku,
                          link_profile=link, history=history).run()
    total_reads = clean.stats.client_reads_applied
    target = max(1, int(total_reads * fault_read_fraction))

    # If the chosen read happens to sit in a non-speculated commit the
    # corruption is consumed synchronously and nothing mispredicts; walk
    # forward until the injection lands on a speculated read.
    injected = None
    candidates = list(range(target, min(target + 50, total_reads)))
    candidates += list(range(max(target - 50, 1), target))
    for candidate in candidates:
        session = RecordSession(workload, config=config, sku=sku,
                                link_profile=link, history=history)
        session.inject_fault_at_read(candidate)
        result = session.run()
        if result.stats.recoveries > 0:
            injected = result
            target = candidate
            break
    if injected is None:
        raise RuntimeError(
            "fault injection never triggered a misprediction — "
            "speculation appears inactive")

    return MispredictionReport(
        workload=workload,
        clean_delay_s=clean.stats.recording_delay_s,
        injected_delay_s=injected.stats.recording_delay_s,
        rollback_cost_s=(injected.stats.recording_delay_s
                         - clean.stats.recording_delay_s),
        detected=True,
        recoveries=injected.stats.recoveries,
        injected_read_index=target,
    )
