"""Dump compression: delta between sync points + zero-run-length coding.

§5: "Both shims use range encoding to compress memory dumps; each shim
calculates and transfers the deltas of memory dumps between consecutive
synchronization points."  Dry-run memory is dominated by zeros (inputs and
parameters are zero-filled, §5), so a zero-run/literal coder captures
almost all of the win of a full range coder while staying fast in numpy.

Wire format of an encoded block::

    u8   flags            (bit0: delta-vs-prev applied)
    u32  original length
    then tokens until exhausted:
      u32 zero_run        (bytes of zeros to emit)
      u32 literal_len     (bytes copied verbatim)
      literal bytes
"""

from __future__ import annotations

import struct
from typing import Optional

import numpy as np

_HEADER = struct.Struct("<BI")
_TOKEN = struct.Struct("<II")

FLAG_DELTA = 0x1

# Gaps of zeros shorter than this are folded into literals (token overhead
# would exceed the zeros saved).
_MIN_ZERO_RUN = 16


class CodecError(ValueError):
    """Corrupt compressed block."""


def _rle_encode(data: np.ndarray) -> bytes:
    """Encode a uint8 array as zero-run / literal tokens."""
    out = [b""]
    nz = np.flatnonzero(data)
    if nz.size == 0:
        return b""
    # Split nonzero indices into literal segments wherever a zero gap of at
    # least _MIN_ZERO_RUN separates them.
    gaps = np.diff(nz)
    split_points = np.flatnonzero(gaps > _MIN_ZERO_RUN) + 1
    segments = np.split(nz, split_points)
    cursor = 0
    for seg in segments:
        start, end = int(seg[0]), int(seg[-1]) + 1
        out.append(_TOKEN.pack(start - cursor, end - start))
        out.append(data[start:end].tobytes())
        cursor = end
    return b"".join(out)


def encode(data: bytes, prev: Optional[bytes] = None) -> bytes:
    """Compress ``data``, optionally as a delta against ``prev``."""
    arr = np.frombuffer(data, dtype=np.uint8)
    flags = 0
    if prev is not None:
        if len(prev) != len(data):
            raise CodecError("delta base has different length")
        arr = arr ^ np.frombuffer(prev, dtype=np.uint8)
        flags |= FLAG_DELTA
    body = _rle_encode(arr)
    return _HEADER.pack(flags, len(data)) + body


def decode(blob: bytes, prev: Optional[bytes] = None) -> bytes:
    """Invert :func:`encode`."""
    if len(blob) < _HEADER.size:
        raise CodecError("truncated header")
    flags, length = _HEADER.unpack_from(blob, 0)
    out = np.zeros(length, dtype=np.uint8)
    offset = _HEADER.size
    cursor = 0
    while offset < len(blob):
        if offset + _TOKEN.size > len(blob):
            raise CodecError("truncated token")
        zero_run, lit_len = _TOKEN.unpack_from(blob, offset)
        offset += _TOKEN.size
        cursor += zero_run
        if cursor + lit_len > length or offset + lit_len > len(blob):
            raise CodecError("token overruns block")
        out[cursor:cursor + lit_len] = np.frombuffer(
            blob[offset:offset + lit_len], dtype=np.uint8)
        cursor += lit_len
        offset += lit_len
    if flags & FLAG_DELTA:
        if prev is None:
            raise CodecError("delta block requires its base")
        if len(prev) != length:
            raise CodecError("delta base has different length")
        out ^= np.frombuffer(prev, dtype=np.uint8)
    return out.tobytes()


def best_encode(data: bytes, prev: Optional[bytes] = None) -> bytes:
    """Encode raw or as a delta against ``prev``, whichever is smaller.

    A delta against an unrelated base can be *larger* than raw, so the
    choice matters — but running the RLE coder twice to find out would
    double the codec cost of every page.  The coder's output size is
    driven by how many nonzero bytes survive, so a single vectorized
    ``count_nonzero`` of each candidate picks the winner and only the
    chosen candidate is RLE-encoded (exactly one `_rle_encode` pass per
    call).
    """
    if prev is None:
        return encode(data)
    if len(prev) != len(data):
        raise CodecError("delta base has different length")
    arr = np.frombuffer(data, dtype=np.uint8)
    delta = arr ^ np.frombuffer(prev, dtype=np.uint8)
    if np.count_nonzero(delta) < np.count_nonzero(arr):
        return _HEADER.pack(FLAG_DELTA, len(data)) + _rle_encode(delta)
    return _HEADER.pack(0, len(data)) + _rle_encode(arr)


def is_delta(blob: bytes) -> bool:
    flags, _ = _HEADER.unpack_from(blob, 0)
    return bool(flags & FLAG_DELTA)
