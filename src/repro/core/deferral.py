"""Register access deferral queues (§4.1).

DriverShim queues register accesses per kernel thread, in program order,
and ships each queue to the client as one *commit*.  This module holds the
data structures: queued operations (reads bind fresh symbols, writes carry
concrete values or wire expressions over this batch's symbols), the commit
request/response encoding, and the commit *signature* used as the
speculation history key (§4.2: "the same register access sequence").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple, Union

from repro.core.symbolic import LazyInt, SymVal, Wire
from repro.hw.regs import reg_name

# Wire sizing for commit messages (§7.1 reports 200-400 byte payloads).
BYTES_PER_OP = 12
BYTES_PER_READ_RESULT = 8


@dataclass
class QueuedRead:
    offset: int
    sym: SymVal


@dataclass
class QueuedWrite:
    offset: int
    value: Union[int, LazyInt]
    tainted: bool = False


QueuedOp = Union[QueuedRead, QueuedWrite]


@dataclass(frozen=True)
class CommitRequest:
    """What travels cloud -> client: ordered ops in wire form."""

    ops: Tuple[Tuple, ...]  # ("r", offset, sym_id) | ("w", offset, wire)

    @property
    def payload_bytes(self) -> int:
        return BYTES_PER_OP * len(self.ops)

    @property
    def read_count(self) -> int:
        return sum(1 for op in self.ops if op[0] == "r")

    @property
    def response_bytes(self) -> int:
        return BYTES_PER_READ_RESULT * self.read_count


class DeferralQueue:
    """One kernel thread's pending register accesses, in program order."""

    def __init__(self, thread: str) -> None:
        self.thread = thread
        self.ops: List[QueuedOp] = []

    def __len__(self) -> int:
        return len(self.ops)

    def add_read(self, offset: int, sym: SymVal) -> None:
        self.ops.append(QueuedRead(offset=offset, sym=sym))

    def add_write(self, offset: int, value: Union[int, LazyInt],
                  tainted: bool) -> None:
        self.ops.append(QueuedWrite(offset=offset, value=value,
                                    tainted=tainted))

    # ------------------------------------------------------------------
    def signature(self) -> Tuple:
        """History key: the shape of the access sequence, not its values.

        Write *values* are excluded (job addresses legitimately differ
        between otherwise identical submissions); read outcomes are what
        speculation predicts.
        """
        sig: List[Tuple] = []
        for op in self.ops:
            if isinstance(op, QueuedRead):
                sig.append(("r", op.offset))
            else:
                symbolic = isinstance(op.value, LazyInt)
                sig.append(("w", op.offset, symbolic))
        return tuple(sig)

    def reads(self) -> List[QueuedRead]:
        return [op for op in self.ops if isinstance(op, QueuedRead)]

    def any_tainted(self) -> bool:
        for op in self.ops:
            if isinstance(op, QueuedWrite):
                if op.tainted:
                    return True
                if isinstance(op.value, LazyInt) and op.value.tainted:
                    return True
        return False

    def request(self) -> CommitRequest:
        """Lower to wire form.  Symbolic write values must reference only
        this batch's symbols (earlier batches were resolved at commit)."""
        own_ids = {op.sym.sym_id for op in self.ops
                   if isinstance(op, QueuedRead)}
        wire_ops: List[Tuple] = []
        for op in self.ops:
            if isinstance(op, QueuedRead):
                wire_ops.append(("r", op.offset, op.sym.sym_id))
            else:
                value = op.value
                if isinstance(value, LazyInt):
                    if value.resolved:
                        wire: Wire = value.evaluate()
                    else:
                        foreign = [s.sym_id for s in value.symbols()
                                   if not s.resolved
                                   and s.sym_id not in own_ids]
                        if foreign:
                            raise RuntimeError(
                                f"write to {reg_name(op.offset)} references "
                                f"unresolved symbols {foreign} from an "
                                f"earlier batch — commit ordering bug")
                        wire = value.wire()
                else:
                    wire = int(value)
                wire_ops.append(("w", op.offset, wire))
        return CommitRequest(ops=tuple(wire_ops))

    def take(self) -> List[QueuedOp]:
        ops, self.ops = self.ops, []
        return ops
