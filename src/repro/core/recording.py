"""The signed recording format.

A recording is the complete, replayable trace of one dry run: the ordered
CPU/GPU interaction log (register writes/reads, polling loops, interrupts,
memory images), the workload's data manifest (where to inject input and
weights, where to fetch output), the GPU SKU fingerprint it is bound to,
and the cloud's signature (§3.2: "DriverShim processes logged interactions
as a recording; it signs and sends the recording back to the client").

The binary layout::

    magic "GRTR" | u16 version | u32 header_len | header JSON
    | u32 n_entries | entry stream | 32-byte HMAC signature

Memory images are stored page-by-page, compressed standalone (not as
wire deltas) so replay needs no decompression context.
"""

from __future__ import annotations

import hashlib
import json
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import compress
from repro.ml.runner import RunManifest
from repro.tee.crypto import SigningKey, VerifyError

MAGIC = b"GRTR"
VERSION = 2

# Entry kinds.
KIND_WRITE = 1
KIND_READ = 2
KIND_POLL = 3
KIND_IRQ = 4
KIND_MEMW = 5
KIND_MEMUP = 6
KIND_MARK = 7

_IRQ_CODES = {"job": 0, "gpu": 1, "mmu": 2}
_IRQ_NAMES = {v: k for k, v in _IRQ_CODES.items()}
_COND_CODES = {"bits_clear": 0, "bits_set": 1, "equals": 2}
_COND_NAMES = {v: k for k, v in _COND_CODES.items()}


class RecordingFormatError(ValueError):
    """Malformed or tampered recording blob."""


# ---------------------------------------------------------------------------
# Entry dataclasses
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RegWrite:
    offset: int
    value: int
    kind: int = KIND_WRITE


@dataclass(frozen=True)
class RegRead:
    offset: int
    value: int
    kind: int = KIND_READ


@dataclass(frozen=True)
class PollEntry:
    offset: int
    condition: str
    operand: int
    value: int
    iterations: int
    kind: int = KIND_POLL


@dataclass(frozen=True)
class IrqEntry:
    line: str
    kind: int = KIND_IRQ


@dataclass(frozen=True)
class MemWrite:
    """Pages pushed cloud->client right before a job start (§5)."""

    pages: Tuple[Tuple[int, bytes], ...]  # (pfn, raw page bytes)
    kind: int = KIND_MEMW
    # Lazily cached standalone encodes of ``pages`` (same order), so
    # serializing a recording never compresses the same page twice.
    # Excluded from equality/hash: it is derived state, not content.
    encoded: Optional[Tuple[bytes, ...]] = field(
        default=None, init=False, compare=False, repr=False)

    @property
    def nbytes(self) -> int:
        return sum(len(b) for _, b in self.pages)

    def encoded_pages(self) -> Tuple[bytes, ...]:
        packed = self.encoded
        if packed is None:
            packed = tuple(compress.encode(raw) for _, raw in self.pages)
            object.__setattr__(self, "encoded", packed)
        return packed


@dataclass(frozen=True)
class MemUpload:
    """Client->cloud dump after a job IRQ; kept for statistics."""

    nbytes: int
    kind: int = KIND_MEMUP


@dataclass(frozen=True)
class Marker:
    """A segment boundary (e.g. an NN layer), §2.3's granularity choice."""

    label: str
    kind: int = KIND_MARK


Entry = object  # union of the dataclasses above


# ---------------------------------------------------------------------------
# The recording
# ---------------------------------------------------------------------------
@dataclass
class Recording:
    workload: str
    recorder: str
    sku_fingerprint: Tuple
    manifest: RunManifest
    data_pfns: Tuple[int, ...]
    entries: List[Entry] = field(default_factory=list)
    signature: Optional[bytes] = None
    # Derived caches (never serialized, never compared).
    _digest: Optional[str] = field(default=None, init=False,
                                   compare=False, repr=False)
    _compiled: Optional[object] = field(default=None, init=False,
                                        compare=False, repr=False)
    _compile_decision: Optional[object] = field(default=None, init=False,
                                                compare=False, repr=False)

    # ------------------------------------------------------------------
    def digest(self) -> str:
        """Content digest (sha256 hex of the unsigned body).

        Cached on first use: recordings are immutable once finalized.
        The fleet registry keys its compiled-program cache on this.
        """
        if self._digest is None:
            self._digest = hashlib.sha256(self.body_bytes()).hexdigest()
        return self._digest

    def compile(self):
        """The columnar compiled form (:mod:`repro.core.compiled`),
        lowered once and cached on the recording.

        Unconditional — callers wanting the cost-model gate (skip the
        lowering when the predicted benefit is too small) consult
        :meth:`compile_decision` first, as ``engine="auto"`` replay does.
        """
        if self._compiled is None:
            from repro.core.compiled import compile_recording
            self._compiled = compile_recording(self)
        return self._compiled

    def compile_decision(self):
        """The compile cost model's verdict for this recording
        (:func:`repro.core.compiled.compile_decision`), cached — the
        O(entries) scan runs once per recording object."""
        if self._compile_decision is None:
            from repro.core.compiled import compile_decision
            self._compile_decision = compile_decision(self)
        return self._compile_decision

    # ------------------------------------------------------------------
    def body_bytes(self) -> bytes:
        header = json.dumps({
            "workload": self.workload,
            "recorder": self.recorder,
            "sku_fingerprint": _fingerprint_to_json(self.sku_fingerprint),
            "manifest": self.manifest.to_dict(),
            "data_pfns": list(self.data_pfns),
        }, sort_keys=True).encode()
        out = [MAGIC, struct.pack("<HI", VERSION, len(header)), header,
               struct.pack("<I", len(self.entries))]
        for entry in self.entries:
            out.append(_encode_entry(entry))
        return b"".join(out)

    def sign(self, key: SigningKey) -> bytes:
        blob = self.body_bytes()
        self.signature = key.sign(blob)
        return blob + self.signature

    def to_bytes(self) -> bytes:
        if self.signature is None:
            raise RecordingFormatError("recording is unsigned")
        return self.body_bytes() + self.signature

    @staticmethod
    def from_bytes(blob: bytes, verify_key: Optional[SigningKey] = None
                   ) -> "Recording":
        if len(blob) < 42 or blob[:4] != MAGIC:
            raise RecordingFormatError("bad magic")
        body, signature = blob[:-32], blob[-32:]
        if verify_key is not None:
            try:
                verify_key.verify(body, signature)
            except VerifyError as exc:
                raise RecordingFormatError(
                    f"recording signature rejected: {exc}") from exc
        # The blob crossed the untrusted OS: any malformation must fail
        # closed as RecordingFormatError, never as a raw parse exception.
        try:
            version, header_len = struct.unpack_from("<HI", body, 4)
            if version != VERSION:
                raise RecordingFormatError(f"unsupported version {version}")
            offset = 10
            header = json.loads(body[offset:offset + header_len].decode())
            offset += header_len
            (n_entries,) = struct.unpack_from("<I", body, offset)
            offset += 4
            entries: List[Entry] = []
            for _ in range(n_entries):
                entry, offset = _decode_entry(body, offset)
                entries.append(entry)
            if offset != len(body):
                raise RecordingFormatError("trailing bytes after entries")
            return Recording(
                workload=header["workload"],
                recorder=header["recorder"],
                sku_fingerprint=_fingerprint_from_json(
                    header["sku_fingerprint"]),
                manifest=RunManifest.from_dict(header["manifest"]),
                data_pfns=tuple(header["data_pfns"]),
                entries=entries,
                signature=signature,
            )
        except RecordingFormatError:
            raise
        except (KeyError, IndexError, ValueError, TypeError,
                struct.error, UnicodeDecodeError) as exc:
            raise RecordingFormatError(
                f"malformed recording: {type(exc).__name__}: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        names = {KIND_WRITE: "writes", KIND_READ: "reads", KIND_POLL: "polls",
                 KIND_IRQ: "irqs", KIND_MEMW: "mem_writes",
                 KIND_MEMUP: "mem_uploads", KIND_MARK: "markers"}
        out = {v: 0 for v in names.values()}
        for e in self.entries:
            out[names[e.kind]] += 1
        return out

    def segments(self) -> List[Tuple[str, List[Entry]]]:
        """Split the log at markers — the per-layer recordings of Figure 2."""
        segments: List[Tuple[str, List[Entry]]] = [("prologue", [])]
        for entry in self.entries:
            if isinstance(entry, Marker):
                segments.append((entry.label, []))
            else:
                segments[-1][1].append(entry)
        return segments


# ---------------------------------------------------------------------------
# Entry codecs
# ---------------------------------------------------------------------------
_REG = struct.Struct("<BIQ")
_POLL = struct.Struct("<BIBQQI")
_IRQ = struct.Struct("<BB")
_MEMW_HDR = struct.Struct("<BI")
_PAGE_HDR = struct.Struct("<QI")
_MEMUP = struct.Struct("<BQ")
_MARK_HDR = struct.Struct("<BH")


def _encode_entry(entry: Entry) -> bytes:
    if isinstance(entry, RegWrite):
        return _REG.pack(KIND_WRITE, entry.offset, entry.value & (2**64 - 1))
    if isinstance(entry, RegRead):
        return _REG.pack(KIND_READ, entry.offset, entry.value & (2**64 - 1))
    if isinstance(entry, PollEntry):
        return _POLL.pack(KIND_POLL, entry.offset,
                          _COND_CODES[entry.condition],
                          entry.operand & (2**64 - 1),
                          entry.value & (2**64 - 1), entry.iterations)
    if isinstance(entry, IrqEntry):
        return _IRQ.pack(KIND_IRQ, _IRQ_CODES[entry.line])
    if isinstance(entry, MemWrite):
        parts = [_MEMW_HDR.pack(KIND_MEMW, len(entry.pages))]
        for (pfn, _), packed in zip(entry.pages, entry.encoded_pages()):
            parts.append(_PAGE_HDR.pack(pfn, len(packed)))
            parts.append(packed)
        return b"".join(parts)
    if isinstance(entry, MemUpload):
        return _MEMUP.pack(KIND_MEMUP, entry.nbytes)
    if isinstance(entry, Marker):
        label = entry.label.encode()
        return _MARK_HDR.pack(KIND_MARK, len(label)) + label
    raise RecordingFormatError(f"unknown entry {entry!r}")


def _decode_entry(body: bytes, offset: int) -> Tuple[Entry, int]:
    kind = body[offset]
    if kind in (KIND_WRITE, KIND_READ):
        _, reg, value = _REG.unpack_from(body, offset)
        cls = RegWrite if kind == KIND_WRITE else RegRead
        return cls(offset=reg, value=value), offset + _REG.size
    if kind == KIND_POLL:
        _, reg, cond, operand, value, iters = _POLL.unpack_from(body, offset)
        return (PollEntry(offset=reg, condition=_COND_NAMES[cond],
                          operand=operand, value=value, iterations=iters),
                offset + _POLL.size)
    if kind == KIND_IRQ:
        _, line = _IRQ.unpack_from(body, offset)
        return IrqEntry(line=_IRQ_NAMES[line]), offset + _IRQ.size
    if kind == KIND_MEMW:
        _, n_pages = _MEMW_HDR.unpack_from(body, offset)
        offset += _MEMW_HDR.size
        pages = []
        packed_pages = []
        for _ in range(n_pages):
            pfn, comp_len = _PAGE_HDR.unpack_from(body, offset)
            offset += _PAGE_HDR.size
            packed = body[offset:offset + comp_len]
            raw = compress.decode(packed)
            pages.append((pfn, raw))
            packed_pages.append(packed)
            offset += comp_len
        entry = MemWrite(pages=tuple(pages))
        # Seed the encode cache with the on-wire blobs so re-serializing
        # a parsed recording never re-compresses (byte-identical by
        # construction: the codec is deterministic).
        object.__setattr__(entry, "encoded", tuple(packed_pages))
        return entry, offset
    if kind == KIND_MEMUP:
        _, nbytes = _MEMUP.unpack_from(body, offset)
        return MemUpload(nbytes=nbytes), offset + _MEMUP.size
    if kind == KIND_MARK:
        _, label_len = _MARK_HDR.unpack_from(body, offset)
        offset += _MARK_HDR.size
        label = body[offset:offset + label_len].decode()
        return Marker(label=label), offset + label_len
    raise RecordingFormatError(f"unknown entry kind {kind} at {offset}")


def _fingerprint_to_json(fp: Tuple) -> List:
    return [list(x) if isinstance(x, tuple) else x for x in fp]


def _fingerprint_from_json(doc: Sequence) -> Tuple:
    return tuple(tuple(x) if isinstance(x, list) else x for x in doc)
