"""Columnar compiled recordings: the replay fast path's input format.

A :class:`~repro.core.recording.Recording` is a list of per-entry
dataclasses — ideal for signing, diffing and property tests, but slow to
stream: replay pays an ``isinstance`` ladder and attribute loads per
entry.  ``compile_recording`` lowers the log *once* into

* columnar numpy arrays (register writes/reads, polls, IRQ lines) and an
  offset-indexed page table (all memory-image pages concatenated into one
  ``(n_pages, PAGE_SIZE)`` array with per-MemWrite bounds), and
* an executable *program*: a flat list of small opcode tuples in which
  runs of consecutive *batchable* register writes are pre-grouped into
  single bulk ops (see :func:`repro.hw.gpu.is_batchable_write`) that the
  replayer hands to :meth:`~repro.hw.gpu.MaliGpu.write_regs` whole.

The program preserves replay semantics exactly: effectful writes (job
door-bells, power commands, AS commands) are never batched, reads/polls/
IRQ waits stay one-at-a-time, and the interpreter falls back to the
per-entry loop for any batch whose virtual-time window contains a pending
GPU event.  Compiled programs are cached on the recording object and, per
(tenant, digest), in :class:`~repro.fleet.registry.RecordingRegistry`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.recording import (
    Entry,
    IrqEntry,
    Marker,
    MemUpload,
    MemWrite,
    PollEntry,
    RegRead,
    RegWrite,
    _COND_CODES,
    _IRQ_CODES,
)
from repro.hw.gpu import is_batchable_write
from repro.hw.memory import PAGE_SIZE

# Program opcodes (tuple layouts in parentheses).
OP_WBATCH = 1  # (op, offsets, values, n): n batchable writes, back to back
OP_WRITE = 2   # (op, offset, value): one write, exact per-entry timing
OP_READ = 3    # (op, offset, expected)
OP_POLL = 4    # (op, offset, cond_code, operand, expected, iterations)
OP_IRQ = 5     # (op, line)
OP_MEMW = 6    # (op, PageGroup)
OP_NOOP = 7    # (op, count): markers / mem-upload stats entries
OP_OBS = 8     # (op, offsets, items, n_reads): a run of observations —
               # reads and instantly-satisfied polls — executed as one
               # speculative batch read.  Items are (OBS_READ, offset,
               # expected) or (OBS_POLL, offset, cond_code, operand,
               # expected, iterations); the interpreter re-runs the items
               # per entry if a GPU event is due in the window or a
               # predicate fails.

OBS_READ = 0
OBS_POLL = 1

# Observation runs shorter than this are emitted as individual ops: one
# batched read only pays for itself once it replaces several calls.
OBS_MIN_BATCH = 4

COND_BITS_CLEAR = _COND_CODES["bits_clear"]
COND_BITS_SET = _COND_CODES["bits_set"]
COND_EQUALS = _COND_CODES["equals"]

REG_DTYPE = np.dtype([("offset", "<u4"), ("value", "<u8")])
POLL_DTYPE = np.dtype([("offset", "<u4"), ("cond", "<u1"), ("operand", "<u8"),
                       ("value", "<u8"), ("iterations", "<u4")])


class PageGroup:
    """One MemWrite's pages as a sorted-pfn page table slice.

    ``select`` returns the (pfns, pages) to install after removing the
    replayer's protected data pages; the filtered view is cached per skip
    set, so steady-state replay does no per-run filtering at all.
    """

    __slots__ = ("pfns", "pages", "_filtered")

    def __init__(self, pfns: np.ndarray, pages: np.ndarray) -> None:
        self.pfns = pfns      # sorted, uint64, one per page
        self.pages = pages    # (len(pfns), PAGE_SIZE) uint8
        self._filtered: Dict[frozenset, Tuple[np.ndarray, np.ndarray, int]] = {}

    def select(self, skip_key: Optional[frozenset]
               ) -> Tuple[np.ndarray, np.ndarray, int]:
        """(pfns, pages, n_skipped) with ``skip_key`` pages removed."""
        if not skip_key:
            return self.pfns, self.pages, 0
        hit = self._filtered.get(skip_key)
        if hit is None:
            skip_arr = np.fromiter(skip_key, dtype=np.uint64,
                                   count=len(skip_key))
            keep = np.isin(self.pfns, skip_arr, invert=True)
            hit = (self.pfns[keep], np.ascontiguousarray(self.pages[keep]),
                   int(len(self.pfns) - int(keep.sum())))
            self._filtered[skip_key] = hit
        return hit


Program = List[tuple]


@dataclass
class CompiledRecording:
    """Columnar form + executable programs for one recording."""

    # Columnar entry arrays (the cacheable, compact representation).
    writes: np.ndarray          # REG_DTYPE, one row per RegWrite
    reads: np.ndarray           # REG_DTYPE, one row per RegRead
    polls: np.ndarray           # POLL_DTYPE
    irq_lines: np.ndarray       # uint8 codes (recording._IRQ_CODES)
    # Offset-indexed page table: every memory-image page exactly once.
    page_pfns: np.ndarray       # uint64, sorted within each group
    page_table: np.ndarray      # (n_pages, PAGE_SIZE) uint8
    memw_bounds: np.ndarray     # (n_memwrites, 2) uint32 [start, end) rows
    entry_count: int
    # Executable forms.
    full_program: Program = field(repr=False)
    segment_programs: List[Tuple[str, Program]] = field(repr=False)

    @property
    def n_pages(self) -> int:
        return int(len(self.page_pfns))

    def nbytes(self) -> int:
        """Approximate resident size of the columnar arrays."""
        return int(self.writes.nbytes + self.reads.nbytes + self.polls.nbytes
                   + self.irq_lines.nbytes + self.page_pfns.nbytes
                   + self.page_table.nbytes + self.memw_bounds.nbytes)


def _page_group(entry: MemWrite) -> PageGroup:
    n = len(entry.pages)
    pfns = np.empty(n, dtype=np.uint64)
    pages = np.empty((n, PAGE_SIZE), dtype=np.uint8)
    for i, (pfn, raw) in enumerate(entry.pages):
        pfns[i] = pfn
        pages[i] = np.frombuffer(raw, dtype=np.uint8)
    order = np.argsort(pfns, kind="stable")
    return PageGroup(np.ascontiguousarray(pfns[order]),
                     np.ascontiguousarray(pages[order]))


def compile_entries(entries: Sequence[Entry]) -> Program:
    """Lower a list of recording entries to an executable program.

    Consecutive batchable register writes collapse into one OP_WBATCH;
    consecutive observations — reads plus polls whose recorded iteration
    count is 1 (satisfied on the first read) — collapse into one OP_OBS;
    consecutive markers/mem-uploads collapse into one OP_NOOP.  Every
    other entry maps 1:1 onto an op in original log order.  Polls that
    needed waiting at record time stay solo: they almost certainly block
    on a GPU event at replay too, and would only poison a speculative
    observation batch.
    """
    program: Program = []
    pend_off: List[int] = []
    pend_val: List[int] = []
    pend_obs: List[tuple] = []
    pend_noop = 0

    def flush() -> None:
        nonlocal pend_noop
        if pend_noop:
            program.append((OP_NOOP, pend_noop))
            pend_noop = 0
        if pend_off:
            if len(pend_off) == 1:
                program.append((OP_WRITE, pend_off[0], pend_val[0]))
            else:
                program.append((OP_WBATCH, tuple(pend_off), tuple(pend_val),
                                len(pend_off)))
            pend_off.clear()
            pend_val.clear()
        if pend_obs:
            if len(pend_obs) < OBS_MIN_BATCH:
                # Tiny runs: the speculative-batch machinery costs more
                # than the per-entry calls it replaces — emit plain ops.
                for item in pend_obs:
                    if item[0] == OBS_READ:
                        program.append((OP_READ, item[1], item[2]))
                    else:
                        program.append((OP_POLL,) + item[1:])
            else:
                program.append((OP_OBS,
                                tuple(item[1] for item in pend_obs),
                                tuple(pend_obs),
                                sum(1 for item in pend_obs
                                    if item[0] == OBS_READ)))
            pend_obs.clear()

    for entry in entries:
        if isinstance(entry, RegWrite):
            if is_batchable_write(entry.offset):
                if pend_noop or pend_obs:
                    flush()
                pend_off.append(entry.offset)
                pend_val.append(entry.value)
            else:
                flush()
                program.append((OP_WRITE, entry.offset, entry.value))
        elif isinstance(entry, RegRead):
            if pend_noop or pend_off:
                flush()
            pend_obs.append((OBS_READ, entry.offset, entry.value))
        elif isinstance(entry, PollEntry):
            if entry.iterations == 1:
                if pend_noop or pend_off:
                    flush()
                pend_obs.append((OBS_POLL, entry.offset,
                                 _COND_CODES[entry.condition],
                                 entry.operand, entry.value,
                                 entry.iterations))
            else:
                flush()
                program.append((OP_POLL, entry.offset,
                                _COND_CODES[entry.condition], entry.operand,
                                entry.value, entry.iterations))
        elif isinstance(entry, IrqEntry):
            flush()
            program.append((OP_IRQ, entry.line))
        elif isinstance(entry, MemWrite):
            flush()
            program.append((OP_MEMW, _page_group(entry)))
        elif isinstance(entry, (MemUpload, Marker)):
            if pend_off or pend_obs:
                flush()
            pend_noop += 1
        else:
            raise ValueError(f"cannot compile entry {entry!r}")
    flush()
    return program


def _collect_columns(entries: Sequence[Entry], program: Program):
    writes = [(e.offset, e.value) for e in entries if isinstance(e, RegWrite)]
    reads = [(e.offset, e.value) for e in entries if isinstance(e, RegRead)]
    polls = [(e.offset, _COND_CODES[e.condition], e.operand, e.value,
              e.iterations) for e in entries if isinstance(e, PollEntry)]
    irqs = [_IRQ_CODES[e.line] for e in entries if isinstance(e, IrqEntry)]
    groups = [op[1] for op in program if op[0] == OP_MEMW]
    bounds = np.zeros((len(groups), 2), dtype=np.uint32)
    row = 0
    for i, group in enumerate(groups):
        bounds[i] = (row, row + len(group.pfns))
        row += len(group.pfns)
    if groups:
        page_pfns = np.concatenate([g.pfns for g in groups])
        page_table = np.concatenate([g.pages for g in groups])
    else:
        page_pfns = np.empty(0, dtype=np.uint64)
        page_table = np.empty((0, PAGE_SIZE), dtype=np.uint8)
    return (np.array(writes, dtype=REG_DTYPE),
            np.array(reads, dtype=REG_DTYPE),
            np.array(polls, dtype=POLL_DTYPE),
            np.array(irqs, dtype=np.uint8),
            page_pfns, page_table, bounds)


def compile_recording(recording) -> CompiledRecording:
    """One-time lowering of a recording: columnar arrays + programs."""
    entries = recording.entries
    full_program = compile_entries(entries)
    writes, reads, polls, irqs, pfns, table, bounds = \
        _collect_columns(entries, full_program)
    segment_programs = [(label, compile_entries(seg))
                        for label, seg in recording.segments()]
    return CompiledRecording(
        writes=writes, reads=reads, polls=polls, irq_lines=irqs,
        page_pfns=pfns, page_table=table, memw_bounds=bounds,
        entry_count=len(entries),
        full_program=full_program,
        segment_programs=segment_programs,
    )
