"""Columnar compiled recordings: the replay fast path's input format.

A :class:`~repro.core.recording.Recording` is a list of per-entry
dataclasses — ideal for signing, diffing and property tests, but slow to
stream: replay pays an ``isinstance`` ladder and attribute loads per
entry.  ``compile_recording`` lowers the log *once* into

* columnar numpy arrays (register writes/reads, polls, IRQ lines) and an
  offset-indexed page table (all memory-image pages concatenated into one
  ``(n_pages, PAGE_SIZE)`` array with per-MemWrite bounds), and
* an executable *program*: a flat list of small opcode tuples in which
  runs of consecutive *batchable* register writes are pre-grouped into
  single bulk ops (see :func:`repro.hw.gpu.is_batchable_write`) that the
  replayer hands to :meth:`~repro.hw.gpu.MaliGpu.write_regs` whole.

The program preserves replay semantics exactly: effectful writes (job
door-bells, power commands, AS commands) are never batched, reads/polls/
IRQ waits stay one-at-a-time, and the interpreter falls back to the
per-entry loop for any batch whose virtual-time window contains a pending
GPU event.  Compiled programs are cached on the recording object and, per
(tenant, digest), in :class:`~repro.fleet.registry.RecordingRegistry`.
"""

from __future__ import annotations

import hashlib
import json
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.recording import (
    Entry,
    IrqEntry,
    Marker,
    MemUpload,
    MemWrite,
    PollEntry,
    RegRead,
    RegWrite,
    _COND_CODES,
    _IRQ_CODES,
)
from repro.hw.gpu import is_batchable_write
from repro.hw.memory import PAGE_SIZE

# Program opcodes (tuple layouts in parentheses).
OP_WBATCH = 1  # (op, offsets, values, n): n batchable writes, back to back
OP_WRITE = 2   # (op, offset, value): one write, exact per-entry timing
OP_READ = 3    # (op, offset, expected)
OP_POLL = 4    # (op, offset, cond_code, operand, expected, iterations)
OP_IRQ = 5     # (op, line)
OP_MEMW = 6    # (op, PageGroup)
OP_NOOP = 7    # (op, count): markers / mem-upload stats entries
OP_OBS = 8     # (op, offsets, items, n_reads): a run of observations —
               # reads and instantly-satisfied polls — executed as one
               # speculative batch read.  Items are (OBS_READ, offset,
               # expected) or (OBS_POLL, offset, cond_code, operand,
               # expected, iterations); the interpreter re-runs the items
               # per entry if a GPU event is due in the window or a
               # predicate fails.

OBS_READ = 0
OBS_POLL = 1

# Observation runs shorter than this are emitted as individual ops: one
# batched read only pays for itself once it replaces several calls.
OBS_MIN_BATCH = 4

COND_BITS_CLEAR = _COND_CODES["bits_clear"]
COND_BITS_SET = _COND_CODES["bits_set"]
COND_EQUALS = _COND_CODES["equals"]

REG_DTYPE = np.dtype([("offset", "<u4"), ("value", "<u8")])
POLL_DTYPE = np.dtype([("offset", "<u4"), ("cond", "<u1"), ("operand", "<u8"),
                       ("value", "<u8"), ("iterations", "<u4")])


class PageGroup:
    """One MemWrite's pages as a sorted-pfn page table slice.

    ``select`` returns the (pfns, pages) to install after removing the
    replayer's protected data pages; the filtered view is cached per skip
    set, so steady-state replay does no per-run filtering at all.
    """

    __slots__ = ("pfns", "pages", "_filtered")

    def __init__(self, pfns: np.ndarray, pages: np.ndarray) -> None:
        self.pfns = pfns      # sorted, uint64, one per page
        self.pages = pages    # (len(pfns), PAGE_SIZE) uint8
        self._filtered: Dict[frozenset, Tuple[np.ndarray, np.ndarray, int]] = {}

    def select(self, skip_key: Optional[frozenset]
               ) -> Tuple[np.ndarray, np.ndarray, int]:
        """(pfns, pages, n_skipped) with ``skip_key`` pages removed."""
        if not skip_key:
            return self.pfns, self.pages, 0
        hit = self._filtered.get(skip_key)
        if hit is None:
            skip_arr = np.fromiter(skip_key, dtype=np.uint64,
                                   count=len(skip_key))
            keep = np.isin(self.pfns, skip_arr, invert=True)
            hit = (self.pfns[keep], np.ascontiguousarray(self.pages[keep]),
                   int(len(self.pfns) - int(keep.sum())))
            self._filtered[skip_key] = hit
        return hit


Program = List[tuple]


@dataclass
class CompiledRecording:
    """Columnar form + executable programs for one recording."""

    # Columnar entry arrays (the cacheable, compact representation).
    writes: np.ndarray          # REG_DTYPE, one row per RegWrite
    reads: np.ndarray           # REG_DTYPE, one row per RegRead
    polls: np.ndarray           # POLL_DTYPE
    irq_lines: np.ndarray       # uint8 codes (recording._IRQ_CODES)
    # Offset-indexed page table: every memory-image page exactly once.
    page_pfns: np.ndarray       # uint64, sorted within each group
    page_table: np.ndarray      # (n_pages, PAGE_SIZE) uint8
    memw_bounds: np.ndarray     # (n_memwrites, 2) uint32 [start, end) rows
    entry_count: int
    # Executable forms.
    full_program: Program = field(repr=False)
    segment_programs: List[Tuple[str, Program]] = field(repr=False)
    #: Set when loaded via :func:`from_artifact`: the artifact's meta
    #: block (identity, versions, elision counts).  ``None`` for
    #: freshly-compiled recordings.
    artifact_meta: Optional[dict] = field(default=None, repr=False,
                                          compare=False)

    @property
    def n_pages(self) -> int:
        return int(len(self.page_pfns))

    def nbytes(self) -> int:
        """Approximate resident size of the columnar arrays."""
        return int(self.writes.nbytes + self.reads.nbytes + self.polls.nbytes
                   + self.irq_lines.nbytes + self.page_pfns.nbytes
                   + self.page_table.nbytes + self.memw_bounds.nbytes)


def _page_group(entry: MemWrite) -> PageGroup:
    n = len(entry.pages)
    pfns = np.empty(n, dtype=np.uint64)
    pages = np.empty((n, PAGE_SIZE), dtype=np.uint8)
    for i, (pfn, raw) in enumerate(entry.pages):
        pfns[i] = pfn
        pages[i] = np.frombuffer(raw, dtype=np.uint8)
    order = np.argsort(pfns, kind="stable")
    return PageGroup(np.ascontiguousarray(pfns[order]),
                     np.ascontiguousarray(pages[order]))


def compile_entries(entries: Sequence[Entry]) -> Program:
    """Lower a list of recording entries to an executable program.

    Consecutive batchable register writes collapse into one OP_WBATCH;
    consecutive observations — reads plus polls whose recorded iteration
    count is 1 (satisfied on the first read) — collapse into one OP_OBS;
    consecutive markers/mem-uploads collapse into one OP_NOOP.  Every
    other entry maps 1:1 onto an op in original log order.  Polls that
    needed waiting at record time stay solo: they almost certainly block
    on a GPU event at replay too, and would only poison a speculative
    observation batch.
    """
    program: Program = []
    pend_off: List[int] = []
    pend_val: List[int] = []
    pend_obs: List[tuple] = []
    pend_noop = 0

    def flush() -> None:
        nonlocal pend_noop
        if pend_noop:
            program.append((OP_NOOP, pend_noop))
            pend_noop = 0
        if pend_off:
            if len(pend_off) == 1:
                program.append((OP_WRITE, pend_off[0], pend_val[0]))
            else:
                program.append((OP_WBATCH, tuple(pend_off), tuple(pend_val),
                                len(pend_off)))
            pend_off.clear()
            pend_val.clear()
        if pend_obs:
            if len(pend_obs) < OBS_MIN_BATCH:
                # Tiny runs: the speculative-batch machinery costs more
                # than the per-entry calls it replaces — emit plain ops.
                for item in pend_obs:
                    if item[0] == OBS_READ:
                        program.append((OP_READ, item[1], item[2]))
                    else:
                        program.append((OP_POLL,) + item[1:])
            else:
                program.append((OP_OBS,
                                tuple(item[1] for item in pend_obs),
                                tuple(pend_obs),
                                sum(1 for item in pend_obs
                                    if item[0] == OBS_READ)))
            pend_obs.clear()

    for entry in entries:
        if isinstance(entry, RegWrite):
            if is_batchable_write(entry.offset):
                if pend_noop or pend_obs:
                    flush()
                pend_off.append(entry.offset)
                pend_val.append(entry.value)
            else:
                flush()
                program.append((OP_WRITE, entry.offset, entry.value))
        elif isinstance(entry, RegRead):
            if pend_noop or pend_off:
                flush()
            pend_obs.append((OBS_READ, entry.offset, entry.value))
        elif isinstance(entry, PollEntry):
            if entry.iterations == 1:
                if pend_noop or pend_off:
                    flush()
                pend_obs.append((OBS_POLL, entry.offset,
                                 _COND_CODES[entry.condition],
                                 entry.operand, entry.value,
                                 entry.iterations))
            else:
                flush()
                program.append((OP_POLL, entry.offset,
                                _COND_CODES[entry.condition], entry.operand,
                                entry.value, entry.iterations))
        elif isinstance(entry, IrqEntry):
            flush()
            program.append((OP_IRQ, entry.line))
        elif isinstance(entry, MemWrite):
            flush()
            program.append((OP_MEMW, _page_group(entry)))
        elif isinstance(entry, (MemUpload, Marker)):
            if pend_off or pend_obs:
                flush()
            pend_noop += 1
        else:
            raise ValueError(f"cannot compile entry {entry!r}")
    flush()
    return program


def _collect_columns(entries: Sequence[Entry], program: Program):
    writes = [(e.offset, e.value) for e in entries if isinstance(e, RegWrite)]
    reads = [(e.offset, e.value) for e in entries if isinstance(e, RegRead)]
    polls = [(e.offset, _COND_CODES[e.condition], e.operand, e.value,
              e.iterations) for e in entries if isinstance(e, PollEntry)]
    irqs = [_IRQ_CODES[e.line] for e in entries if isinstance(e, IrqEntry)]
    groups = [op[1] for op in program if op[0] == OP_MEMW]
    bounds = np.zeros((len(groups), 2), dtype=np.uint32)
    row = 0
    for i, group in enumerate(groups):
        bounds[i] = (row, row + len(group.pfns))
        row += len(group.pfns)
    if groups:
        page_pfns = np.concatenate([g.pfns for g in groups])
        page_table = np.concatenate([g.pages for g in groups])
    else:
        page_pfns = np.empty(0, dtype=np.uint64)
        page_table = np.empty((0, PAGE_SIZE), dtype=np.uint8)
    return (np.array(writes, dtype=REG_DTYPE),
            np.array(reads, dtype=REG_DTYPE),
            np.array(polls, dtype=POLL_DTYPE),
            np.array(irqs, dtype=np.uint8),
            page_pfns, page_table, bounds)


def compile_recording(recording) -> CompiledRecording:
    """One-time lowering of a recording: columnar arrays + programs."""
    entries = recording.entries
    full_program = compile_entries(entries)
    writes, reads, polls, irqs, pfns, table, bounds = \
        _collect_columns(entries, full_program)
    segment_programs = [(label, compile_entries(seg))
                        for label, seg in recording.segments()]
    return CompiledRecording(
        writes=writes, reads=reads, polls=polls, irq_lines=irqs,
        page_pfns=pfns, page_table=table, memw_bounds=bounds,
        entry_count=len(entries),
        full_program=full_program,
        segment_programs=segment_programs,
    )


# ----------------------------------------------------------------------
# Compile cost model
# ----------------------------------------------------------------------
# Compilation is not free (BENCH_replay.json: 2.4 s on alexnet) and not
# always worth it: mnist's measured compiled-replay speedup is 1.03×
# because its replay time is dominated by blocking poll iterations that
# both engines pay identically.  The model below predicts the speedup
# from entry counts alone — O(entries), no compile needed — using a
# two-term unit-cost account: per-entry dispatch (what batching removes)
# plus blocking poll iterations weighted at _POLL_ITER_WEIGHT dispatches
# each (what batching cannot touch).  Calibrated against BENCH_replay:
# alexnet/NAIVE predicts 3.2× (measured 3.46×), mnist predicts 1.2×
# (measured 1.03×).
_POLL_ITER_WEIGHT = 4.0    # one blocking poll iteration ≈ 4 dispatches
_BATCH_SIZE_EST = 8.0      # estimated mean batch length after lowering
COMPILE_MIN_ENTRIES = 32   # below this, compile setup dwarfs any win
COMPILE_MIN_SPEEDUP = 1.5  # predicted-benefit threshold


@dataclass(frozen=True)
class CompileDecision:
    """Outcome of the compile cost model for one recording."""

    use_compiled: bool
    reason: str               # "beneficial" | "low-benefit" | "tiny-recording"
    predicted_speedup: float

    def __str__(self) -> str:
        return (f"{'compile' if self.use_compiled else 'skip'}"
                f"({self.reason}, predicted {self.predicted_speedup:.2f}x)")


def compile_decision(recording) -> CompileDecision:
    """Predict whether compiling ``recording`` beats the interpreter.

    ``engine="auto"`` replay consults this and falls back to the legacy
    interpreter (skipping both the compile and any store publish) when
    the predicted benefit is under :data:`COMPILE_MIN_SPEEDUP`; passing
    ``engine="compiled"`` explicitly always compiles.
    """
    entries = recording.entries
    n = len(entries)
    if n < COMPILE_MIN_ENTRIES:
        return CompileDecision(False, "tiny-recording", 1.0)
    batchable = 0
    blocked_iters = 0
    for e in entries:
        if isinstance(e, RegWrite):
            if is_batchable_write(e.offset):
                batchable += 1
        elif isinstance(e, RegRead):
            batchable += 1
        elif isinstance(e, PollEntry):
            if e.iterations == 1:
                batchable += 1
            else:
                blocked_iters += e.iterations - 1
    shared = _POLL_ITER_WEIGHT * blocked_iters
    legacy_cost = n + shared
    compiled_cost = (n - batchable) + batchable / _BATCH_SIZE_EST + shared
    predicted = legacy_cost / max(compiled_cost, 1.0)
    if predicted < COMPILE_MIN_SPEEDUP:
        return CompileDecision(False, "low-benefit", predicted)
    return CompileDecision(True, "beneficial", predicted)


# ----------------------------------------------------------------------
# Artifact codec: flat binary serialization for the on-disk store
# ----------------------------------------------------------------------
# Layout:
#
#   +--------------------------------------------------------------+
#   | header (16 B): magic "GRTA" | u16 version | u16 flags        |
#   |                | u32 meta_len | u32 crc32(meta)              |
#   +--------------------------------------------------------------+
#   | meta: JSON — identity (recording digest, tenant, workload,   |
#   |   compiler/schema versions, SKU fingerprint), the section    |
#   |   table (payload-relative offset/nbytes/dtype/shape), the    |
#   |   payload sha256, and both programs (OP_MEMW ops carry a     |
#   |   page-group index instead of inline pages)                  |
#   +---- padding to 64-byte alignment ----------------------------+
#   | payload: numpy sections, each 64-byte aligned —              |
#   |   writes | reads | polls | irq_lines | page_pfns |           |
#   |   page_table | memw_bounds | group_full_counts | skip_pfns   |
#   +--------------------------------------------------------------+
#
# Pages in the publish-time skip set (the replayer's protected data
# pages) are *elided*: replay never installs them, so persisting them
# would only bloat the artifact ~100× (alexnet/NAIVE: 116 MB → ~1 MB)
# and park recorded data-page bytes in a shared store for no benefit —
# the §7.1-conservative choice.  ``group_full_counts`` preserves the
# original per-group page counts so loaded page groups report the exact
# recorded (pages_loaded, pages_skipped) split, keeping store-hit replay
# stats bit-identical to a fresh compile.  ``from_artifact`` verifies
# the meta crc32 and the payload sha256 on every open — cheap at ~1 MB —
# so a corrupt artifact is rejected, never served.

ARTIFACT_MAGIC = b"GRTA"
ARTIFACT_VERSION = 1       # flat-layout schema version (store key part)
COMPILER_VERSION = 1       # program-lowering version (store key part)
_HEADER = struct.Struct("<4sHHII")
_ALIGN = 64

_SECTION_ORDER = ("writes", "reads", "polls", "irq_lines", "page_pfns",
                  "page_table", "memw_bounds", "group_full_counts",
                  "skip_pfns")


class ArtifactError(ValueError):
    """A compiled artifact is corrupt, truncated, or wrong for the key."""


def _align(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


def _encode_program(program: Program, cursor: List[int]) -> List[list]:
    """JSON-encode a program; OP_MEMW ops become [op, group_index].

    ``cursor`` is a one-element running group counter.  The full program
    is encoded with its own counter (indices 0..n-1); segment programs
    share a second counter across all segments, which yields the *same*
    0..n-1 range because segment MemWrite groups mirror the full
    program's in log order (``segments()`` splits at markers, so every
    MemWrite lands in exactly one segment).  The decoder resolves both
    against one group list, so full and segment programs share PageGroup
    instances — one filter cache.
    """
    out: List[list] = []
    for op in program:
        if op[0] == OP_MEMW:
            out.append([OP_MEMW, cursor[0]])
            cursor[0] += 1
        elif op[0] == OP_WBATCH:
            out.append([OP_WBATCH, list(op[1]), list(op[2]), op[3]])
        elif op[0] == OP_OBS:
            out.append([OP_OBS, list(op[1]),
                        [list(item) for item in op[2]], op[3]])
        else:
            out.append(list(op))
    return out


def _decode_program(encoded: List[list],
                    groups: List[PageGroup]) -> Program:
    """Rebuild a program, resolving group indices against ``groups``."""
    program: Program = []
    for op in encoded:
        code = op[0]
        if code == OP_MEMW:
            if not 0 <= op[1] < len(groups):
                raise ArtifactError(
                    f"artifact program references page group {op[1]} "
                    f"of {len(groups)}")
            program.append((OP_MEMW, groups[op[1]]))
        elif code == OP_WBATCH:
            program.append((OP_WBATCH, tuple(op[1]), tuple(op[2]), op[3]))
        elif code == OP_OBS:
            program.append((OP_OBS, tuple(op[1]),
                            tuple(tuple(item) for item in op[2]), op[3]))
        else:
            program.append(tuple(op))
    return program


class _ElidedPageGroup(PageGroup):
    """A page group whose publish-time skipped pages were elided.

    Only the pages replay actually installs were persisted; ``select``
    answers the exact skip set the artifact was published for (with the
    recorded skip count, keeping stats bit-identical) and refuses any
    other — a replay against a different skip set needs a fresh compile
    from the recording, not a partial artifact.
    """

    __slots__ = ("publish_skip_key", "n_elided")

    def __init__(self, pfns: np.ndarray, pages: np.ndarray,
                 publish_skip_key: frozenset, n_elided: int) -> None:
        super().__init__(pfns, pages)
        self.publish_skip_key = publish_skip_key
        self.n_elided = n_elided
        self._filtered[publish_skip_key] = (pfns, pages, n_elided)

    def select(self, skip_key: Optional[frozenset]
               ) -> Tuple[np.ndarray, np.ndarray, int]:
        if skip_key:
            hit = self._filtered.get(skip_key)
            if hit is not None:
                return hit
        raise ArtifactError(
            "artifact page group was published for a fixed skip set and "
            "cannot serve a different one; recompile from the recording")


def _memw_groups(compiled: CompiledRecording) -> List[PageGroup]:
    return [op[1] for op in compiled.full_program if op[0] == OP_MEMW]


def to_artifact(compiled: CompiledRecording, *, tenant_id: str,
                recording=None, recording_digest: str = "",
                workload: str = "", recorder: str = "",
                sku_fingerprint=(), skip_pfns=None) -> bytes:
    """Serialize ``compiled`` to the flat artifact byte layout.

    When ``recording`` is given, identity fields (digest, workload,
    recorder, SKU fingerprint) and the skip set (``data_pfns``) come
    from it; explicit keyword values override.  The skip set's pages are
    elided from the page table (see module comment).
    """
    if recording is not None:
        recording_digest = recording_digest or recording.digest()
        workload = workload or recording.workload
        recorder = recorder or recording.recorder
        sku_fingerprint = sku_fingerprint or recording.sku_fingerprint
        if skip_pfns is None:
            skip_pfns = recording.data_pfns
    skip_sorted = sorted(int(p) for p in (skip_pfns or ()))
    skip_key: Optional[frozenset] = frozenset(skip_sorted) or None

    groups = _memw_groups(compiled)
    seg_groups = [op[1] for _, prog in compiled.segment_programs
                  for op in prog if op[0] == OP_MEMW]
    if len(seg_groups) != len(groups) or any(
            not np.array_equal(a.pfns, b.pfns)
            for a, b in zip(groups, seg_groups)):
        raise ArtifactError(
            "segment programs do not mirror the full program's MemWrite "
            "groups; cannot share page groups in the artifact")

    kept_pfns: List[np.ndarray] = []
    kept_pages: List[np.ndarray] = []
    bounds = np.zeros((len(groups), 2), dtype=np.uint32)
    full_counts = np.zeros(len(groups), dtype=np.uint32)
    row = 0
    for i, group in enumerate(groups):
        pfns, pages, _ = group.select(skip_key)
        kept_pfns.append(pfns)
        kept_pages.append(pages)
        bounds[i] = (row, row + len(pfns))
        full_counts[i] = len(group.pfns)
        row += len(pfns)
    if groups:
        pfns_arr = np.ascontiguousarray(np.concatenate(kept_pfns))
        table_arr = np.ascontiguousarray(np.concatenate(kept_pages))
    else:
        pfns_arr = np.empty(0, dtype=np.uint64)
        table_arr = np.empty((0, PAGE_SIZE), dtype=np.uint8)

    sections = {
        "writes": compiled.writes,
        "reads": compiled.reads,
        "polls": compiled.polls,
        "irq_lines": compiled.irq_lines,
        "page_pfns": pfns_arr,
        "page_table": table_arr,
        "memw_bounds": bounds,
        "group_full_counts": full_counts,
        "skip_pfns": np.asarray(skip_sorted, dtype=np.uint64),
    }
    table: Dict[str, dict] = {}
    chunks: List[bytes] = []
    offset = 0
    sha = hashlib.sha256()
    for name in _SECTION_ORDER:
        arr = np.ascontiguousarray(sections[name])
        raw = arr.tobytes()
        table[name] = {"offset": offset, "nbytes": len(raw),
                       "dtype": np.lib.format.dtype_to_descr(arr.dtype),
                       "shape": list(arr.shape)}
        chunks.append(raw)
        sha.update(raw)
        pad = _align(offset + len(raw)) - (offset + len(raw))
        if pad:
            chunks.append(b"\0" * pad)
            sha.update(b"\0" * pad)
        offset = _align(offset + len(raw))

    seg_cursor = [0]
    encoded_segments = [[label, _encode_program(prog, seg_cursor)]
                        for label, prog in compiled.segment_programs]
    meta = {
        "artifact_version": ARTIFACT_VERSION,
        "compiler_version": COMPILER_VERSION,
        "recording_digest": recording_digest,
        "tenant_id": tenant_id,
        "workload": workload,
        "recorder": recorder,
        "sku_fingerprint": _fingerprint_json(sku_fingerprint),
        "entry_count": compiled.entry_count,
        "page_count": int(sum(full_counts)) if len(groups) else 0,
        "pages_elided": int(sum(full_counts)) - int(len(pfns_arr)),
        "payload_nbytes": offset,
        "payload_sha256": sha.hexdigest(),
        "sections": table,
        "programs": {
            "full": _encode_program(compiled.full_program, [0]),
            "segments": encoded_segments,
        },
    }
    meta_raw = json.dumps(meta, sort_keys=True,
                          separators=(",", ":")).encode()
    header = _HEADER.pack(ARTIFACT_MAGIC, ARTIFACT_VERSION, 0,
                          len(meta_raw), zlib.crc32(meta_raw))
    pad = _align(len(header) + len(meta_raw)) - len(header) - len(meta_raw)
    return b"".join([header, meta_raw, b"\0" * pad] + chunks)


def _fingerprint_json(fingerprint) -> list:
    """SKU fingerprints are nested tuples; JSON needs nested lists."""
    return [list(item) if isinstance(item, (tuple, list)) else item
            for item in fingerprint]


def _fingerprint_tuple(encoded) -> tuple:
    return tuple(tuple(item) if isinstance(item, list) else item
                 for item in encoded)


def _parse_header(buf) -> Tuple[dict, int]:
    """Validate header + meta of an artifact buffer; (meta, payload_base)."""
    if len(buf) < _HEADER.size:
        raise ArtifactError("artifact truncated: no header")
    magic, version, _flags, meta_len, meta_crc = _HEADER.unpack(
        bytes(buf[:_HEADER.size]))
    if magic != ARTIFACT_MAGIC:
        raise ArtifactError("not a compiled artifact (bad magic)")
    if version != ARTIFACT_VERSION:
        raise ArtifactError(
            f"artifact schema v{version} unsupported "
            f"(this build reads v{ARTIFACT_VERSION})")
    if len(buf) < _HEADER.size + meta_len:
        raise ArtifactError("artifact truncated: incomplete meta")
    meta_raw = bytes(buf[_HEADER.size:_HEADER.size + meta_len])
    if zlib.crc32(meta_raw) != meta_crc:
        raise ArtifactError("artifact meta corrupt (crc mismatch)")
    try:
        meta = json.loads(meta_raw)
    except ValueError as exc:
        raise ArtifactError(f"artifact meta unreadable: {exc}") from None
    return meta, _align(_HEADER.size + meta_len)


def artifact_meta(source) -> dict:
    """Parse and return just the meta block (header-weight operation)."""
    buf = _as_buffer(source)
    meta, _ = _parse_header(buf)
    return meta


def _as_buffer(source) -> np.ndarray:
    """A uint8 array over ``source``: memmap for paths, view for bytes."""
    if isinstance(source, (bytes, bytearray, memoryview)):
        return np.frombuffer(source, dtype=np.uint8)
    try:
        return np.memmap(source, dtype=np.uint8, mode="r")
    except (OSError, ValueError) as exc:
        raise ArtifactError(f"cannot map artifact {source!r}: {exc}") from None


def from_artifact(source, *, expected_digest: Optional[str] = None,
                  expected_tenant: Optional[str] = None,
                  expected_sku=None, verify: bool = True
                  ) -> CompiledRecording:
    """Load a compiled recording from an artifact file or byte buffer.

    Paths are opened with ``np.memmap`` and every section becomes a
    read-only view into the mapping — no per-entry copies, O(pages
    touched) to first replay.  The meta crc32 and payload sha256 are
    re-checked on every open (``verify=False`` skips the payload hash;
    the store never does).  Mismatched identity raises: wrong recording
    digest or SKU → :class:`ArtifactError`; wrong tenant →
    ``TenantIsolationError`` (§7.1 — a store entry is never served
    across tenants).
    """
    buf = _as_buffer(source)
    meta, payload_base = _parse_header(buf)
    if meta.get("compiler_version") != COMPILER_VERSION:
        raise ArtifactError(
            f"artifact compiled by compiler v{meta.get('compiler_version')}"
            f" (this build is v{COMPILER_VERSION}); recompile")
    if expected_digest is not None and \
            meta.get("recording_digest") != expected_digest:
        raise ArtifactError(
            f"artifact is for recording {meta.get('recording_digest')!r},"
            f" not {expected_digest!r}")
    if expected_tenant is not None and \
            meta.get("tenant_id") != expected_tenant:
        from repro.fleet.registry import TenantIsolationError
        raise TenantIsolationError(
            f"artifact belongs to tenant {meta.get('tenant_id')!r}; "
            f"tenant {expected_tenant!r} may not open it (§7.1)")
    if expected_sku is not None and \
            _fingerprint_tuple(meta.get("sku_fingerprint", [])) != \
            tuple(expected_sku):
        raise ArtifactError("artifact was compiled for a different SKU")

    payload_nbytes = int(meta["payload_nbytes"])
    if len(buf) < payload_base + payload_nbytes:
        raise ArtifactError("artifact truncated: incomplete payload")
    payload = buf[payload_base:payload_base + payload_nbytes]
    if verify:
        digest = hashlib.sha256(memoryview(payload)).hexdigest()
        if digest != meta["payload_sha256"]:
            raise ArtifactError("artifact payload corrupt (sha mismatch)")

    arrays: Dict[str, np.ndarray] = {}
    for name in _SECTION_ORDER:
        spec = meta["sections"][name]
        off, nbytes = int(spec["offset"]), int(spec["nbytes"])
        if off < 0 or off + nbytes > payload_nbytes:
            raise ArtifactError(f"artifact section {name!r} out of bounds")
        descr = spec["dtype"]
        if not isinstance(descr, str):
            # Structured descrs round-trip through JSON as nested lists.
            descr = [tuple(fld) for fld in descr]
        try:
            dtype = np.dtype(descr)
        except TypeError as exc:
            raise ArtifactError(
                f"artifact section {name!r} dtype invalid: {exc}") from None
        shape = tuple(spec["shape"])
        raw = payload[off:off + nbytes]
        try:
            arrays[name] = raw.view(dtype).reshape(shape)
        except (ValueError, TypeError) as exc:
            raise ArtifactError(
                f"artifact section {name!r} malformed: {exc}") from None

    skip_sorted = [int(p) for p in arrays["skip_pfns"]]
    skip_key: Optional[frozenset] = frozenset(skip_sorted) or None
    bounds = arrays["memw_bounds"]
    full_counts = arrays["group_full_counts"]
    groups: List[PageGroup] = []
    for i in range(len(bounds)):
        lo, hi = int(bounds[i, 0]), int(bounds[i, 1])
        pfns = arrays["page_pfns"][lo:hi]
        pages = arrays["page_table"][lo:hi]
        n_elided = int(full_counts[i]) - (hi - lo)
        if n_elided == 0:
            groups.append(PageGroup(pfns, pages))
        elif skip_key is None:
            raise ArtifactError("artifact elides pages but records no "
                                "skip set")
        else:
            groups.append(_ElidedPageGroup(pfns, pages, skip_key, n_elided))

    programs = meta["programs"]
    full_program = _decode_program(programs["full"], groups)
    segment_programs = [(label, _decode_program(encoded, groups))
                        for label, encoded in programs["segments"]]
    return CompiledRecording(
        writes=arrays["writes"], reads=arrays["reads"],
        polls=arrays["polls"], irq_lines=arrays["irq_lines"],
        page_pfns=arrays["page_pfns"], page_table=arrays["page_table"],
        memw_bounds=bounds, entry_count=int(meta["entry_count"]),
        full_program=full_program, segment_programs=segment_programs,
        artifact_meta=meta,
    )
