"""DriverShim: the cloud half of the recorder (§3.2, §4, §5).

DriverShim sits at the bottom of the cloud GPU stack as the driver's
register bus.  Depending on the recorder configuration it:

* forwards every access synchronously (Naive / OursM);
* defers accesses into per-thread queues inside hot driver functions and
  commits them in batches at control dependencies, kernel-API calls,
  explicit delays, lock operations, and hot-function exits (§4.1);
* speculates commit outcomes from history, continuing execution on
  predicted values and validating asynchronously (§4.2), with taint
  tracking that stalls dependent commits so speculative state never spills
  to the client;
* offloads simple polling loops in one round trip, speculating on the
  terminating predicate (§4.3);
* triggers memory synchronization right before the job-start register
  write and consumes the client's dump after each job interrupt (§5).

It also implements the kernel-hook interface, which is where the paper's
Clang instrumentation would call into it, and the fast-forward mode used
by misprediction recovery (re-executing the driver against the recorded
log with no network, §4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.deferral import (
    CommitRequest,
    DeferralQueue,
    QueuedRead,
)
from repro.core.gpushim import GpuShim
from repro.core.memsync import MemorySynchronizer
from repro.core.recording import Entry, IrqEntry, PollEntry, RegRead, RegWrite
from repro.core.speculation import (
    CommitHistory,
    MispredictionDetected,
    OutstandingCommit,
    SpeculationStats,
)
from repro.core.symbolic import LazyInt, SymVal, concrete
from repro.driver.bus import PollResult, PollSpec, RegisterBus
from repro.driver.hotfuncs import CommitCategory
from repro.hw import regs
from repro.hw.gpu import GpuIrqLine
from repro.hw.regs import JsCommand
from repro.kernel.env import KernelEnv, KernelHooks, Platform
from repro.sim.network import Link, Message

# Offsets whose write starts a GPU job: the memory-sync push boundary.
_JOB_START_OFFSETS = {
    regs.js_reg(slot, regs.JS_COMMAND_NEXT)
    for slot in range(regs.NUM_JOB_SLOTS)
}

IRQ_MESSAGE_BYTES = 24
POLL_REQUEST_BYTES = 32
POLL_RESPONSE_BYTES = 16


class FeedMismatch(RuntimeError):
    """Fast-forward re-execution diverged from the recorded log — the
    driver is not deterministic, which breaks GR's premises."""


class FastForwardFeed:
    """Recorded log prefix consumed during recovery re-execution (§4.2).

    The driver re-runs from scratch; its register accesses are answered
    from the log instead of the network, and the client independently
    replays the same prefix onto the reset GPU.
    """

    def __init__(self, entries: List[Entry]) -> None:
        self.entries = entries
        self.cursor = 0

    @property
    def active(self) -> bool:
        self._skip_passive()
        return self.cursor < len(self.entries)

    def _skip_passive(self) -> None:
        # Memory images / uploads / markers are handled by the client-side
        # prefix replay; the cloud feed only answers CPU-visible events.
        while self.cursor < len(self.entries):
            entry = self.entries[self.cursor]
            if isinstance(entry, (RegRead, RegWrite, PollEntry, IrqEntry)):
                return
            self.cursor += 1

    def _next(self) -> Entry:
        self._skip_passive()
        if self.cursor >= len(self.entries):
            raise FeedMismatch("fast-forward feed exhausted mid-operation")
        entry = self.entries[self.cursor]
        self.cursor += 1
        return entry

    def expect_read(self, offset: int) -> int:
        entry = self._next()
        if not isinstance(entry, RegRead) or entry.offset != offset:
            raise FeedMismatch(f"expected read of {offset:#x}, log has {entry}")
        return entry.value

    def expect_write(self, offset: int, value: int) -> None:
        entry = self._next()
        if not isinstance(entry, RegWrite) or entry.offset != offset:
            raise FeedMismatch(f"expected write of {offset:#x}, log has {entry}")
        if entry.value != value & 0xFFFF_FFFF:
            raise FeedMismatch(
                f"write to {offset:#x} regenerated {value:#x}, "
                f"log has {entry.value:#x}")

    def expect_poll(self, spec: PollSpec) -> PollResult:
        entry = self._next()
        if not isinstance(entry, PollEntry) or entry.offset != spec.offset:
            raise FeedMismatch(f"expected poll of {spec.offset:#x}, got {entry}")
        return PollResult(value=entry.value, iterations=entry.iterations,
                          success=spec.satisfied_by(entry.value))

    def peek_irq(self) -> Optional[str]:
        self._skip_passive()
        if self.cursor < len(self.entries):
            entry = self.entries[self.cursor]
            if isinstance(entry, IrqEntry):
                self.cursor += 1
                return entry.line
        return None


@dataclass
class ShimModes:
    """Which of the paper's techniques are active (recorder variants)."""

    defer: bool = False
    speculate: bool = False
    offload_polls: bool = False


class DriverShim(RegisterBus, KernelHooks):
    """The instrumented register bus the cloud driver runs on."""

    def __init__(self, link: Link, gpushim: GpuShim,
                 memsync: MemorySynchronizer, modes: ShimModes,
                 history: Optional[CommitHistory] = None,
                 tracer=None) -> None:
        self.link = link
        self.gpushim = gpushim
        self.memsync = memsync
        self.modes = modes
        self.history = history if history is not None else CommitHistory()
        self.stats = SpeculationStats()
        # Optional repro.obs.Tracer: spans for deferral commits (§4.1),
        # speculation windows (§4.2), polling offloads (§4.3) and
        # memsync epochs (§5).  Every hook is None-guarded.
        self.tracer = tracer
        self._spec_window_start: Optional[float] = None
        self.env: Optional[KernelEnv] = None
        self.metastate_provider: Callable[[], Set[int]] = lambda: set()

        self._queues: Dict[str, DeferralQueue] = {}
        self._hot_stack: Dict[str, List[Tuple[str, str]]] = {}
        self._sym_counter = 0
        self._outstanding: List[OutstandingCommit] = []
        self._control_taint: Set[str] = set()
        self.last_validated_position = 0
        self.feed: Optional[FastForwardFeed] = None
        self.reg_accesses = 0
        self._in_emulated_poll = False
        # Optional resilience wiring: a SessionCheckpointer notified at
        # memory-sync watermarks (repro.resilience.checkpoint).
        self.checkpointer = None

    # ------------------------------------------------------------------
    def attach(self, env: KernelEnv) -> None:
        self.env = env
        env.hooks.append(self)

    def _queue(self) -> DeferralQueue:
        thread = self.env.current.name
        if thread not in self._queues:
            self._queues[thread] = DeferralQueue(thread)
        return self._queues[thread]

    def _deferring(self) -> bool:
        if not self.modes.defer:
            return False
        stack = self._hot_stack.get(self.env.current.name)
        return bool(stack)

    def _category(self) -> str:
        stack = self._hot_stack.get(self.env.current.name)
        if stack:
            return stack[-1][1]
        return CommitCategory.OTHER

    @property
    def ff_active(self) -> bool:
        return self.feed is not None and self.feed.active

    # ------------------------------------------------------------------
    # RegisterBus interface
    # ------------------------------------------------------------------
    def read32(self, offset: int):
        self.reg_accesses += 1
        if self._deferring():
            self._sym_counter += 1
            sym = SymVal(self._sym_counter, self,
                         origin=regs.reg_name(offset))
            self._queue().add_read(offset, sym)
            return sym
        return self._sync_single_read(offset)

    def write32(self, offset: int, value) -> None:
        self.reg_accesses += 1
        is_job_start = (offset in _JOB_START_OFFSETS
                        and isinstance(value, int)
                        and value == JsCommand.START)
        if is_job_start:
            # §5: sync memory right before the job-start write.  Pending
            # ops are committed first so ordering is preserved.
            self._flush_queue("job-start")
            self._memsync_push()
        if self._deferring():
            tainted = (self.env.current.name in self._control_taint
                       or (isinstance(value, LazyInt) and value.tainted))
            if isinstance(value, LazyInt) and value.resolved:
                value = value.evaluate()
            self._queue().add_write(offset, value, tainted)
            return
        self._sync_single_write(offset, concrete(value))

    def poll(self, spec: PollSpec) -> PollResult:
        if self.modes.offload_polls:
            return self._offloaded_poll(spec)
        return self._emulated_poll(spec)

    # ------------------------------------------------------------------
    # Synchronous single-op paths (Naive / OursM / cold code)
    # ------------------------------------------------------------------
    def _rpc(self, request: Message, response: Message, apply):
        """One blocking request/response with the commit applied on the
        client.  A reliable channel (repro.resilience.channel) owns the
        retransmission/dedup logic and guarantees ``apply`` runs exactly
        once; a plain Link applies after its perfect round trip."""
        rpc = getattr(self.link, "rpc", None)
        if rpc is not None:
            return rpc(request, response, apply)
        self.link.round_trip(request, response)
        return apply()

    def _sync_single_read(self, offset: int) -> int:
        if self.ff_active:
            return self.feed.expect_read(offset)
        tracer = self.tracer
        if tracer is not None:
            tracer.begin("commit", cat="deferral",
                         args={"reason": "sync-read", "ops": 1,
                               "speculated": False})
        try:
            self._sym_counter += 1
            request = CommitRequest(ops=(("r", offset, self._sym_counter),))
            env = self._rpc(Message("commit", request.payload_bytes),
                            Message("commit-resp", request.response_bytes),
                            lambda: self.gpushim.apply_commit(request))
            self.stats.note_commit(self._category(), speculated=False,
                                   reads=1)
            self.last_validated_position = self.gpushim.log_position()
            return env[self._sym_counter]
        finally:
            if tracer is not None:
                tracer.end()

    def _sync_single_write(self, offset: int, value: int) -> None:
        if self.ff_active:
            self.feed.expect_write(offset, value)
            return
        tracer = self.tracer
        if tracer is not None:
            tracer.begin("commit", cat="deferral",
                         args={"reason": "sync-write", "ops": 1,
                               "speculated": False})
        try:
            request = CommitRequest(ops=(("w", offset, value),))
            self._rpc(Message("commit", request.payload_bytes),
                      Message("commit-resp", 4),
                      lambda: self.gpushim.apply_commit(request))
            self.stats.note_commit(self._category(), speculated=False,
                                   reads=0)
            self.last_validated_position = self.gpushim.log_position()
        finally:
            if tracer is not None:
                tracer.end()

    # ------------------------------------------------------------------
    # Commit machinery (§4.1 / §4.2)
    # ------------------------------------------------------------------
    def _flush_queue(self, reason: str, allow_speculation: bool = True) -> None:
        if self.env is None:
            return
        queue = self._queues.get(self.env.current.name)
        if not queue or len(queue) == 0:
            return
        category = self._category()
        signature = queue.signature()
        reads = queue.reads()

        if self.ff_active:
            self._flush_from_feed(queue)
            self.stats.note_commit(category, speculated=False,
                                   reads=len(reads))
            return

        tracer = self.tracer
        speculated = False
        if tracer is not None:
            tracer.begin("commit", cat="deferral",
                         args={"reason": reason, "category": category,
                               "ops": len(queue), "reads": len(reads)})
        try:
            # §4.2 optimization: a commit carrying speculative (tainted)
            # state must wait for outstanding commits to validate, so
            # mispredicted state never reaches the client.
            if queue.any_tainted() \
                    or self.env.current.name in self._control_taint:
                self.stats.tainted_commit_stalls += 1
                self.validate_outstanding()

            request = queue.request()
            prediction = None
            if self._in_emulated_poll:
                # §4.3: speculating inside a polling loop means predicting
                # the iteration count, which is timing-nondeterministic.
                # Without offload, poll iterations always commit
                # synchronously.
                allow_speculation = False
            if self.modes.speculate and allow_speculation:
                if reads:
                    prediction = self.history.predict(signature)
                else:
                    # A commit with no reads has nothing to predict: the
                    # driver needs no value back, so it is inherently
                    # asynchronous under speculation.
                    prediction = ()

            if prediction is not None:
                speculated = True
                completion = self.link.async_round_trip(
                    Message("commit", request.payload_bytes),
                    Message("commit-resp", request.response_bytes))
                safe_position = self.last_validated_position
                actual_env = self.gpushim.apply_commit(request)
                actual = tuple(actual_env[r.sym.sym_id] for r in reads)
                for qread, value in zip(reads, prediction):
                    qread.sym.resolve(value, tainted=True)
                if not self._outstanding:
                    # A speculation window (§4.2) opens with the first
                    # outstanding commit; validate_outstanding closes it.
                    self._spec_window_start = self.link.clock.now
                self._outstanding.append(OutstandingCommit(
                    signature=signature, category=category,
                    predicted=tuple(prediction), actual=actual,
                    completion_time=completion,
                    read_syms=[r.sym for r in reads],
                    safe_log_position=safe_position))
                self.stats.note_commit(category, speculated=True,
                                       reads=len(reads))
            else:
                env = self._rpc(
                    Message("commit", request.payload_bytes),
                    Message("commit-resp", max(request.response_bytes, 4)),
                    lambda: self.gpushim.apply_commit(request))
                for qread in reads:
                    qread.sym.resolve(env[qread.sym.sym_id], tainted=False)
                values = tuple(env[r.sym.sym_id] for r in reads)
                self.history.record(signature, values)
                self.stats.note_commit(category, speculated=False,
                                       reads=len(reads))
                if not self._outstanding:
                    self.last_validated_position = \
                        self.gpushim.log_position()
            queue.take()
        finally:
            if tracer is not None:
                tracer.end(args={"speculated": speculated})

    def _flush_from_feed(self, queue: DeferralQueue) -> None:
        """Recovery fast-forward: answer the batch from the log."""
        for op in queue.take():
            if isinstance(op, QueuedRead):
                op.sym.resolve(self.feed.expect_read(op.offset))
            else:
                value = op.value
                if isinstance(value, LazyInt):
                    value = value.evaluate()
                self.feed.expect_write(op.offset, int(value))

    def force_resolution(self, lazy: LazyInt) -> None:
        """A branch or coercion demanded a concrete value: the control
        dependency commit (§4.1)."""
        if lazy.resolved:
            return
        if lazy.tainted:
            self._control_taint.add(self.env.current.name)
        self._flush_queue("control-dep")
        if not lazy.resolved:
            raise RuntimeError(
                "commit did not resolve a forced value — the symbol is not "
                "in the current thread's queue")
        # Branching on a value that is (now) speculative taints subsequent
        # control flow in this thread until validation clears it.
        if any(s.taint for s in lazy.symbols()):
            self._control_taint.add(self.env.current.name)

    def validate_outstanding(self) -> None:
        """Stall until all asynchronous commits complete, then compare
        predictions against reality (§4.2)."""
        if not self._outstanding:
            return
        tracer = self.tracer
        outstanding = len(self._outstanding)
        stalled = False
        latest = max(oc.completion_time for oc in self._outstanding)
        if latest > self.link.clock.now:
            self.link.clock.advance_to(latest, label="network")
            self.stats.validation_stalls += 1
            stalled = True
        try:
            for oc in self._outstanding:
                # Feed reality into history first: after a rollback the
                # re-run must not make the same wrong prediction again.
                self.history.record(oc.signature, oc.actual)
                oc.validate()
        except MispredictionDetected as exc:
            self.stats.mispredictions += 1
            if tracer is not None:
                tracer.event("misprediction", cat="speculation",
                             args={"signature": str(exc.signature),
                                   "safe_log_position":
                                       exc.safe_log_position})
            raise
        finally:
            self._outstanding.clear()
            self._control_taint.clear()
            if tracer is not None and self._spec_window_start is not None:
                tracer.add_span(
                    "speculation-window", "speculation",
                    self._spec_window_start, self.link.clock.now,
                    args={"outstanding": outstanding, "stalled": stalled})
            self._spec_window_start = None
        self.last_validated_position = self.gpushim.log_position()

    # ------------------------------------------------------------------
    # Polling loops (§4.3)
    # ------------------------------------------------------------------
    def _offloaded_poll(self, spec: PollSpec) -> PollResult:
        tracer = self.tracer
        if tracer is not None:
            tracer.begin("poll-offload", cat="polling",
                         args={"offset": spec.offset})
        try:
            return self._offloaded_poll_inner(spec)
        finally:
            if tracer is not None:
                tracer.end()

    def _offloaded_poll_inner(self, spec: PollSpec) -> PollResult:
        self._flush_queue("poll-offload")
        if self.ff_active:
            return self.feed.expect_poll(spec)
        self.stats.polls_offloaded += 1
        psig = ("poll", spec.offset, spec.condition, spec.operand)
        prediction = (self.history.predict(psig)
                      if self.modes.speculate else None)
        if prediction is not None:
            # Predict the *predicate* outcome, not the iteration count.
            pred_success, pred_value = prediction
            completion = self.link.async_round_trip(
                Message("poll", POLL_REQUEST_BYTES),
                Message("poll-resp", POLL_RESPONSE_BYTES))
            safe_position = self.last_validated_position
            actual = self.gpushim.execute_poll(spec)
            sym = SymVal(0, self)  # no driver-visible symbol; bookkeeping
            sym.resolve(actual.value, tainted=False)
            if not self._outstanding:
                self._spec_window_start = self.link.clock.now
            self._outstanding.append(OutstandingCommit(
                signature=psig, category=CommitCategory.POLLING,
                predicted=(pred_success, pred_value),
                actual=(actual.success, actual.value),
                completion_time=completion, read_syms=[],
                safe_log_position=safe_position))
            self.stats.polls_speculated += 1
            self.stats.note_commit(CommitCategory.POLLING, speculated=True,
                                   reads=1)
            return PollResult(value=pred_value, iterations=1,
                              success=pred_success)
        result = self._rpc(Message("poll", POLL_REQUEST_BYTES),
                           Message("poll-resp", POLL_RESPONSE_BYTES),
                           lambda: self.gpushim.execute_poll(spec))
        self.history.record(psig, (result.success, result.value))
        self.stats.note_commit(CommitCategory.POLLING, speculated=False,
                               reads=1)
        if not self._outstanding:
            self.last_validated_position = self.gpushim.log_position()
        return result

    def _emulated_poll(self, spec: PollSpec) -> PollResult:
        """No offload: each iteration's read is a control dependency, so
        deferral gains nothing — §4.3's motivating observation."""
        self._in_emulated_poll = True
        try:
            iterations = 0
            value = 0
            while iterations < spec.max_iters:
                value = concrete(self.read32(spec.offset))
                iterations += 1
                if spec.satisfied_by(value):
                    return PollResult(value=value, iterations=iterations,
                                      success=True)
            return PollResult(value=value, iterations=iterations,
                              success=False)
        finally:
            self._in_emulated_poll = False

    # ------------------------------------------------------------------
    # Memory synchronization (§5)
    # ------------------------------------------------------------------
    def _memsync_push(self) -> None:
        if self.ff_active:
            # Client-side prefix replay already restored its memory; just
            # consume the cloud-side dirty bookkeeping.
            self.memsync.cloud_mem.take_dirty()
            return
        tracer = self.tracer
        if tracer is not None:
            tracer.begin("memsync-push", cat="memsync")
        pages_n = wire = 0
        try:
            pages, wire = self.memsync.push(self.metastate_provider())
            pages_n = len(pages)
            if pages:
                self.link.send_to_client(Message("memsync-push", wire),
                                         blocking=True)
                self.memsync.apply_push(pages)
                self.gpushim.note_mem_write(pages)
            if self.checkpointer is not None:
                self.checkpointer.on_watermark(self, "memsync-push")
        finally:
            if tracer is not None:
                tracer.end(args={"pages": pages_n, "wire_bytes": wire})

    def memsync_pull(self) -> None:
        if self.ff_active:
            self.memsync.client_mem.take_dirty()
            return
        tracer = self.tracer
        if tracer is not None:
            tracer.begin("memsync-pull", cat="memsync")
        pages_n = wire = 0
        try:
            pages, wire = self.memsync.pull(self.metastate_provider())
            pages_n = len(pages)
            if pages or wire:
                self.link.receive_from_client(Message("memsync-pull", wire))
                self.memsync.apply_pull(pages)
            self.gpushim.note_mem_upload(wire)
            if self.checkpointer is not None:
                self.checkpointer.on_watermark(self, "memsync-pull")
        finally:
            if tracer is not None:
                tracer.end(args={"pages": pages_n, "wire_bytes": wire})

    # ------------------------------------------------------------------
    # KernelHooks: the instrumentation seam (§4.1's commit triggers)
    # ------------------------------------------------------------------
    def on_kernel_api(self, env: KernelEnv, name: str) -> None:
        if name == "printk":
            # Externalization: stall speculation, then commit for real.
            self.validate_outstanding()
            self._flush_queue("externalize", allow_speculation=False)
        else:
            self._flush_queue(f"kernel-api:{name}")

    def on_lock(self, env: KernelEnv, lock_name: str) -> None:
        self._flush_queue(f"lock:{lock_name}")

    def on_unlock(self, env: KernelEnv, lock_name: str) -> None:
        # Release consistency: all deferred accesses commit before any
        # other thread can observe state guarded by this lock.
        self._flush_queue(f"unlock:{lock_name}")

    def on_delay(self, env: KernelEnv, seconds: float) -> None:
        self._flush_queue("explicit-delay")

    def on_hot_enter(self, env: KernelEnv, name: str, category: str) -> None:
        self._hot_stack.setdefault(env.current.name, []).append(
            (name, category))

    def on_hot_exit(self, env: KernelEnv, name: str, category: str) -> None:
        self._flush_queue(f"hot-exit:{name}")
        stack = self._hot_stack.get(env.current.name)
        if stack and stack[-1][0] == name:
            stack.pop()

    def on_thread_switch(self, env: KernelEnv, ctx) -> None:
        pass  # queues are per-thread; nothing to do

    # ------------------------------------------------------------------
    def finish(self) -> None:
        """End of record run: drain every queue and validate everything."""
        for thread in list(self._queues):
            queue = self._queues[thread]
            if len(queue):
                self._flush_queue("session-end", allow_speculation=False)
        self.validate_outstanding()


class CloudPlatform(Platform):
    """The cloud kernel's platform: the "hardware" is the remote client.

    Sleeping drivers wake on client interrupts; waiting fast-forwards the
    shared virtual clock to the client GPU's next event and charges the
    interrupt forwarding (and the post-job memory pull) to the link.
    """

    def __init__(self, gpushim: GpuShim, shim: DriverShim, link: Link) -> None:
        self.gpushim = gpushim
        self.shim = shim
        self.link = link
        self.kbdev = None
        self._delivering = False

    def attach(self, kbdev) -> None:
        self.kbdev = kbdev

    # ------------------------------------------------------------------
    def deliver_pending(self) -> bool:
        if self.kbdev is None or self._delivering:
            return False
        self._delivering = True
        delivered = False
        try:
            if self.shim.ff_active:
                while True:
                    line = self.shim.feed.peek_irq()
                    if line is None:
                        return delivered
                    self.kbdev.dispatch_irq(line)
                    delivered = True
            for _ in range(64):
                line = self.gpushim.take_pending_irq()
                if line is None:
                    return delivered
                self.link.receive_from_client(Message("irq", IRQ_MESSAGE_BYTES))
                if line == GpuIrqLine.JOB:
                    # §5: the client uploads its dump right after the
                    # job-completion interrupt.
                    self.shim.memsync_pull()
                self.kbdev.dispatch_irq(line)
                delivered = True
            raise RuntimeError("interrupt storm from client GPU")
        finally:
            self._delivering = False

    def wait_for_event(self, env: KernelEnv, timeout_s: float) -> bool:
        if self.shim.ff_active:
            # All events come from the feed during fast-forward.
            if self.deliver_pending():
                return True
            self.shim.validate_outstanding()
            return False
        gpu = self.gpushim.gpu
        if gpu.any_irq_pending() is not None:
            self.shim.validate_outstanding()
            if self.deliver_pending():
                return True
        # Let the GPU make progress *before* validating outstanding
        # speculative commits: their network completion overlaps with GPU
        # execution, so waiting on the GPU first usually absorbs the RTT
        # (the whole point of asynchronous commits, §4.2).
        next_event = gpu.next_event_time()
        if next_event is not None:
            label = "gpu" if not gpu.is_idle() else "idle"
            env.clock.advance_to(min(next_event, env.clock.now + timeout_s),
                                 label=label)
            gpu.service()
        self.shim.validate_outstanding()
        if self.deliver_pending():
            return True
        return next_event is not None
