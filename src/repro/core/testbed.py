"""Client-device assembly helpers used by examples, tests, and benchmarks.

``ClientDevice`` bundles one simulated mobile device: physical memory,
GPU, TrustZone controller, OP-TEE, and a virtual clock.  ``native_run``
executes a workload on the device's own (insecure, normal-world) GPU
stack — Table 2's "Native" baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.driver.bus import LocalBus
from repro.driver.devfreq import DevfreqGovernor, GovernorConfig
from repro.driver.driver import KbaseDevice, LocalPlatform
from repro.hw.clocks import SocClockController
from repro.hw.gpu import MaliGpu
from repro.hw.memory import PhysicalMemory
from repro.hw.sku import GpuSku, HIKEY960_G71
from repro.kernel.env import KernelEnv
from repro.ml.graph import Graph
from repro.ml.models import build_model
from repro.ml.runner import (
    WorkloadRunner,
    generate_weights,
    required_memory_bytes,
)
from repro.runtime.api import GpuContext
from repro.sim.clock import VirtualClock
from repro.sim.energy import EnergyMeter
from repro.tee.optee import OpTeeOS


@dataclass
class ClientDevice:
    """One simulated mobile device (Hikey960-like by default)."""

    sku: GpuSku = HIKEY960_G71
    mem_size: int = 256 << 20
    clock: VirtualClock = field(default_factory=VirtualClock)

    def __post_init__(self) -> None:
        self.mem = PhysicalMemory(size=self.mem_size)
        self.gpu = MaliGpu(self.sku, self.mem, self.clock)
        self.optee = OpTeeOS()
        self.optee.tzasc.static_reserve(self.mem.base, self.mem.size)
        self.clk = SocClockController(self.gpu, self.optee.tzasc)

    @classmethod
    def for_workload(cls, graph: Graph, sku: GpuSku = HIKEY960_G71
                     ) -> "ClientDevice":
        return cls(sku=sku, mem_size=required_memory_bytes(graph))


@dataclass
class NativeResult:
    """One native (normal-world GPU stack) inference execution."""

    output: np.ndarray
    delay_s: float
    energy_j: float
    reg_accesses: int
    jobs: int


def native_run(workload, input_array: np.ndarray,
               sku: GpuSku = HIKEY960_G71, seed: int = 0,
               warm_runs: int = 1,
               weights: Optional[Dict[str, np.ndarray]] = None,
               devfreq_mode: Optional[str] = None) -> NativeResult:
    """Run a workload on the device's own full GPU stack (Table 2 Native).

    ``warm_runs`` executions precede the measured one so JIT compilation
    and shader placement are warm, matching how steady-state inference
    delay is measured.  ``devfreq_mode`` ("ondemand"/"performance")
    enables the DVFS governor; None pins the SKU's nominal rate.
    """
    graph = build_model(workload) if isinstance(workload, str) else workload
    device = ClientDevice.for_workload(graph, sku=sku)
    clock = device.clock
    env = KernelEnv(clock)
    platform = LocalPlatform(device.gpu, env)
    bus = LocalBus(device.gpu, clock)
    kbdev = KbaseDevice(env, bus, device.mem)
    platform.attach(kbdev)
    kbdev.probe()
    if devfreq_mode is not None:
        kbdev.devfreq = DevfreqGovernor(
            device.clk, GovernorConfig(mode=devfreq_mode))
    ctx = GpuContext(kbdev, device.mem)
    runner = WorkloadRunner(ctx, graph, seed=seed)
    runner.load_weights(weights if weights is not None
                        else generate_weights(graph, seed))
    for _ in range(warm_runs):
        runner.run(input_array)
    t0 = clock.now
    timeline_start = len(clock.timeline)
    output = runner.run(input_array)
    delay = clock.now - t0
    meter = EnergyMeter()
    energy = sum(
        span.duration * (meter.model.idle_w
                         + {"cpu": meter.model.cpu_w,
                            "gpu": meter.model.gpu_w}.get(span.label, 0.0))
        for span in list(clock.timeline)[timeline_start:])
    return NativeResult(output=output, delay_s=delay, energy_j=energy,
                        reg_accesses=bus.reads + bus.writes,
                        jobs=runner.manifest.total_jobs)
