"""Memory synchronization between the cloud's and the client's memory (§5).

With the job queue length pinned to 1, the driver and the GPU never touch
shared memory simultaneously, so two sync points per job suffice:

* **push** (cloud -> client) right before the register write that starts a
  job: ships the driver/runtime's memory updates so the GPU sees them;
* **pull** (client -> cloud) right after the job-completion interrupt:
  ships the GPU's updates back.

Two policies implement the paper's comparison.  ``FULL`` (Naive) moves
every dirty page.  ``META_ONLY`` (OursM and up) moves only GPU metastate —
shader code, command memory, job descriptors, and page tables — identified
from mapping permissions exactly as §5 describes, and never program data.

Transfers are delta+RLE compressed against the last version the peer saw
(:mod:`repro.core.compress`).  A continuous-validation check models the
paper's unmap-and-trap safety net: pages that change while the other side
owns the memory raise :class:`MemorySyncViolation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from repro.core import compress
from repro.hw.memory import PAGE_SIZE, PhysicalMemory


class SyncPolicy:
    FULL = "full"
    META_ONLY = "meta-only"


class MemorySyncViolation(RuntimeError):
    """A spurious access touched synchronized memory out of turn (§5's
    page-fault trap)."""


@dataclass
class MemSyncStats:
    pushes: int = 0
    pulls: int = 0
    pages_pushed: int = 0
    pages_pulled: int = 0
    raw_push_bytes: int = 0
    raw_pull_bytes: int = 0
    wire_push_bytes: int = 0
    wire_pull_bytes: int = 0

    @property
    def raw_total_bytes(self) -> int:
        return self.raw_push_bytes + self.raw_pull_bytes

    @property
    def wire_total_bytes(self) -> int:
        return self.wire_push_bytes + self.wire_pull_bytes


class MemorySynchronizer:
    """Keeps one (cloud_mem, client_mem) pair coherent per the policy."""

    def __init__(self, cloud_mem: PhysicalMemory, client_mem: PhysicalMemory,
                 policy: str = SyncPolicy.META_ONLY,
                 compress_enabled: bool = True) -> None:
        if policy not in (SyncPolicy.FULL, SyncPolicy.META_ONLY):
            raise ValueError(f"unknown sync policy {policy!r}")
        self.cloud_mem = cloud_mem
        self.client_mem = client_mem
        self.policy = policy
        # Naive ships raw dumps; delta+RLE compression is part of §5.
        self.compress_enabled = compress_enabled
        self.stats = MemSyncStats()
        # Per-page last-synced contents, the delta base (§5 compression).
        self._peer_view: Dict[int, bytes] = {}
        # Pages pushed to the client while the GPU owns them; the cloud
        # dirtying any of these before the pull is a violation.
        self._gpu_owned: Set[int] = set()

    # ------------------------------------------------------------------
    def _wire_size(self, pfn: int, raw: bytes) -> int:
        if not self.compress_enabled:
            return len(raw)
        packed = compress.best_encode(raw, self._peer_view.get(pfn))
        return len(packed)

    # ------------------------------------------------------------------
    # Metastate identification (§5: permission bits + ioctl flags)
    # ------------------------------------------------------------------
    def _select(self, dirty: Set[int], metastate: Set[int]) -> List[int]:
        if self.policy == SyncPolicy.FULL:
            return sorted(dirty)
        return sorted(dirty & metastate)

    # ------------------------------------------------------------------
    def push(self, metastate_pfns: Iterable[int]
             ) -> Tuple[Dict[int, bytes], int]:
        """Cloud -> client, before a job start.

        Returns (pages as raw bytes, wire bytes after compression).  The
        caller charges the network and applies the pages to client memory.
        """
        dirty = self.cloud_mem.take_dirty()
        meta = set(metastate_pfns)
        violated = dirty & self._gpu_owned
        if violated:
            raise MemorySyncViolation(
                f"cloud wrote {len(violated)} page(s) owned by the GPU "
                f"(e.g. pfn {min(violated):#x})")
        pfns = self._select(dirty, meta)
        pages: Dict[int, bytes] = {}
        wire = 0
        for pfn in pfns:
            raw = self.cloud_mem.page_bytes(pfn)
            wire += self._wire_size(pfn, raw)
            self._peer_view[pfn] = raw
            pages[pfn] = raw
        self.stats.pushes += 1
        self.stats.pages_pushed += len(pages)
        self.stats.raw_push_bytes += len(pages) * PAGE_SIZE
        self.stats.wire_push_bytes += wire
        # Hand the pushed region (and all metastate) to the GPU until pull.
        self._gpu_owned = set(pfns) | (meta if self.policy
                                       == SyncPolicy.META_ONLY else dirty)
        return pages, wire

    def apply_push(self, pages: Dict[int, bytes]) -> None:
        """Client side: install pushed pages into client memory.

        The installs are the *cloud's* state, not GPU writes — they must
        not re-enter the next pull's dirty set (that would echo every
        push straight back over the uplink).
        """
        for pfn, raw in pages.items():
            self.client_mem.write_page(pfn, raw)
        self.client_mem.clear_dirty_pages(pages)

    # ------------------------------------------------------------------
    def pull(self, metastate_pfns: Iterable[int]
             ) -> Tuple[Dict[int, bytes], int]:
        """Client -> cloud, after the job-completion interrupt."""
        dirty = self.client_mem.take_dirty()
        pfns = self._select(dirty, set(metastate_pfns))
        pages: Dict[int, bytes] = {}
        wire = 0
        for pfn in pfns:
            raw = self.client_mem.page_bytes(pfn)
            wire += self._wire_size(pfn, raw)
            self._peer_view[pfn] = raw
            pages[pfn] = raw
        self.stats.pulls += 1
        self.stats.pages_pulled += len(pages)
        self.stats.raw_pull_bytes += len(pages) * PAGE_SIZE
        self.stats.wire_pull_bytes += wire
        self._gpu_owned.clear()
        return pages, wire

    def apply_pull(self, pages: Dict[int, bytes]) -> None:
        """Cloud side: install the GPU's updates into cloud memory.

        Only the installed pages leave the dirty set — clearing more
        would also erase the evidence of any spurious cloud write made
        while the GPU owned the memory (§5's trap must still fire at the
        next push).
        """
        for pfn, raw in pages.items():
            self.cloud_mem.write_page(pfn, raw)
        self.cloud_mem.clear_dirty_pages(pages)

    # ------------------------------------------------------------------
    def prime_client_baseline(self) -> None:
        """Reset the client's dirty tracker at session start so the first
        pull reflects only GPU writes."""
        self.client_mem.clear_dirty()
