"""Memory synchronization between the cloud's and the client's memory (§5).

With the job queue length pinned to 1, the driver and the GPU never touch
shared memory simultaneously, so two sync points per job suffice:

* **push** (cloud -> client) right before the register write that starts a
  job: ships the driver/runtime's memory updates so the GPU sees them;
* **pull** (client -> cloud) right after the job-completion interrupt:
  ships the GPU's updates back.

Two policies implement the paper's comparison.  ``FULL`` (Naive) moves
every dirty page.  ``META_ONLY`` (OursM and up) moves only GPU metastate —
shader code, command memory, job descriptors, and page tables — identified
from mapping permissions exactly as §5 describes, and never program data.

Transfers are delta+RLE compressed against the last version the peer saw
(:mod:`repro.core.compress`).  A continuous-validation check models the
paper's unmap-and-trap safety net: pages that change while the other side
owns the memory raise :class:`MemorySyncViolation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

import numpy as np

from repro.core import compress
from repro.hw.memory import PAGE_SHIFT, PAGE_SIZE, PhysicalMemory
from repro.obs.metrics import StatsBase


class SyncPolicy:
    FULL = "full"
    META_ONLY = "meta-only"


class MemorySyncViolation(RuntimeError):
    """A spurious access touched synchronized memory out of turn (§5's
    page-fault trap)."""


@dataclass
class MemSyncStats(StatsBase):
    SCHEMA = "repro.memsync"

    pushes: int = 0
    pulls: int = 0
    pages_pushed: int = 0
    pages_pulled: int = 0
    raw_push_bytes: int = 0
    raw_pull_bytes: int = 0
    wire_push_bytes: int = 0
    wire_pull_bytes: int = 0
    # Dirty pages whose bytes still matched the peer's last-synced copy
    # (re-written with identical content): nothing travels for them.
    # Detected by a vectorized compare against the peer view, so a
    # skipped page costs one row comparison, not a codec pass.
    pages_skipped: int = 0
    # Codec invocations (each is exactly one RLE pass since the
    # single-encode rewrite; the old code paid two per page).
    encodes: int = 0

    @property
    def raw_total_bytes(self) -> int:
        return self.raw_push_bytes + self.raw_pull_bytes

    @property
    def wire_total_bytes(self) -> int:
        return self.wire_push_bytes + self.wire_pull_bytes


class MemorySynchronizer:
    """Keeps one (cloud_mem, client_mem) pair coherent per the policy."""

    def __init__(self, cloud_mem: PhysicalMemory, client_mem: PhysicalMemory,
                 policy: str = SyncPolicy.META_ONLY,
                 compress_enabled: bool = True) -> None:
        if policy not in (SyncPolicy.FULL, SyncPolicy.META_ONLY):
            raise ValueError(f"unknown sync policy {policy!r}")
        self.cloud_mem = cloud_mem
        self.client_mem = client_mem
        self.policy = policy
        # Naive ships raw dumps; delta+RLE compression is part of §5.
        self.compress_enabled = compress_enabled
        self.stats = MemSyncStats()
        # Optional repro.obs.Tracer: per-epoch encode events (§5); the
        # surrounding network-charged epoch span lives in the DriverShim.
        self.tracer = None
        # Per-page last-synced contents — the delta base (§5 compression)
        # and the "dirty but unchanged" detector.  Stored as rows of one
        # growing 2-D array so a whole sync point's pages compare against
        # the peer view in a single vectorized pass; ``_peer_rows`` maps
        # pfn -> row index.
        self._peer_rows: Dict[int, int] = {}
        self._peer_arr = np.empty((0, PAGE_SIZE), dtype=np.uint8)
        # Pages pushed to the client while the GPU owns them; the cloud
        # dirtying any of these before the pull is a violation.
        self._gpu_owned: Set[int] = set()

    # ------------------------------------------------------------------
    def _peer_row(self, pfn: int) -> int:
        """Row index for ``pfn`` in the peer view, allocating on first use
        (capacity doubles, so amortized one row copy per new page)."""
        row = self._peer_rows.get(pfn)
        if row is None:
            row = len(self._peer_rows)
            if row >= len(self._peer_arr):
                grown = np.zeros((max(64, 2 * len(self._peer_arr)),
                                  PAGE_SIZE), dtype=np.uint8)
                grown[:len(self._peer_arr)] = self._peer_arr
                self._peer_arr = grown
            self._peer_rows[pfn] = row
        return row

    def peer_pfns(self) -> Iterable[int]:
        """Frames present in the peer view."""
        return self._peer_rows.keys()

    def peer_page(self, pfn: int) -> bytes:
        """The peer's last-synced copy of ``pfn``."""
        return self._peer_arr[self._peer_rows[pfn]].tobytes()

    def _encode_pages(self, mem: PhysicalMemory, pfns: List[int]
                      ) -> Tuple[Dict[int, bytes], int, int]:
        """Encode each selected page exactly once.

        Returns (pages to ship, wire bytes, pages skipped).  The selected
        pages are compared run-wise against the peer view without any
        per-page copies; a dirty page whose bytes still equal the peer's
        last-synced copy is skipped outright — the peer already holds it,
        so neither codec work nor wire bytes are spent.  Only genuinely
        changed pages reach the codec, and each is encoded exactly once.
        """
        n = len(pfns)
        if n == 0:
            return {}, 0, 0
        peer_rows = self._peer_rows
        rows = np.fromiter((peer_rows.get(p, -1) for p in pfns),
                           dtype=np.int64, count=n)
        unchanged = np.zeros(n, dtype=bool)
        store = mem.pages_view()
        if store is None:
            for i, pfn in enumerate(pfns):
                r = rows[i]
                if r >= 0 and \
                        self._peer_arr[r].tobytes() == mem.page_bytes(pfn):
                    unchanged[i] = True
        else:
            base_pfn = mem.base >> PAGE_SHIFT
            idx = np.fromiter(pfns, dtype=np.int64, count=n) - base_pfn
            # Steady-state sync points re-select the same sorted frames,
            # so both the frames and their peer rows decompose into the
            # same few consecutive runs — compare slice views directly
            # (no gather copies), eight bytes at a time.
            cuts = np.nonzero(np.diff(idx) != 1)[0] + 1
            bounds = (0, *cuts.tolist(), n)
            for a, b in zip(bounds, bounds[1:]):
                rr = rows[a:b]
                k = b - a
                if int(rr[0]) >= 0 and int(rr[-1]) - int(rr[0]) == k - 1 \
                        and (k == 1 or bool(np.all(np.diff(rr) == 1))):
                    peer = self._peer_arr[int(rr[0]):int(rr[0]) + k]
                    cur = store[int(idx[a]):int(idx[a]) + k]
                    unchanged[a:b] = np.all(
                        peer.view(np.uint64) == cur.view(np.uint64), axis=1)
                else:
                    known = rr >= 0
                    if known.any():
                        peer = self._peer_arr[rr[known]]
                        cur = store[idx[a:b][known]]
                        unchanged[a:b][known] = np.all(
                            peer.view(np.uint64) == cur.view(np.uint64),
                            axis=1)
        pages: Dict[int, bytes] = {}
        wire = 0
        encodes = 0
        for i in np.nonzero(~unchanged)[0]:
            pfn = pfns[i]
            raw = mem.page_bytes(pfn)
            if self.compress_enabled:
                prev = (self._peer_arr[rows[i]].tobytes()
                        if rows[i] >= 0 else None)
                wire += len(compress.best_encode(raw, prev))
                encodes += 1
            else:
                wire += PAGE_SIZE
            row = self._peer_row(pfn)  # may grow (rebind) _peer_arr
            self._peer_arr[row] = np.frombuffer(raw, dtype=np.uint8)
            pages[pfn] = raw
        self.stats.encodes += encodes
        return pages, wire, int(unchanged.sum())

    # ------------------------------------------------------------------
    # Metastate identification (§5: permission bits + ioctl flags)
    # ------------------------------------------------------------------
    def _select(self, dirty: Set[int], metastate: Set[int]) -> List[int]:
        if self.policy == SyncPolicy.FULL:
            return sorted(dirty)
        return sorted(dirty & metastate)

    # ------------------------------------------------------------------
    def push(self, metastate_pfns: Iterable[int]
             ) -> Tuple[Dict[int, bytes], int]:
        """Cloud -> client, before a job start.

        Returns (pages as raw bytes, wire bytes after compression).  The
        caller charges the network and applies the pages to client memory.
        """
        dirty = self.cloud_mem.take_dirty()
        meta = set(metastate_pfns)
        violated = dirty & self._gpu_owned
        if violated:
            raise MemorySyncViolation(
                f"cloud wrote {len(violated)} page(s) owned by the GPU "
                f"(e.g. pfn {min(violated):#x})")
        pfns = self._select(dirty, meta)
        pages, wire, skipped = self._encode_pages(self.cloud_mem, pfns)
        self.stats.pushes += 1
        self.stats.pages_pushed += len(pages)
        self.stats.pages_skipped += skipped
        self.stats.raw_push_bytes += len(pages) * PAGE_SIZE
        self.stats.wire_push_bytes += wire
        if self.tracer is not None:
            self.tracer.event("memsync-encode", cat="memsync",
                              args={"dir": "push", "pages": len(pages),
                                    "skipped": skipped, "wire_bytes": wire})
        # Hand the pushed region (and all metastate) to the GPU until pull.
        self._gpu_owned = set(pfns) | (meta if self.policy
                                       == SyncPolicy.META_ONLY else dirty)
        return pages, wire

    def apply_push(self, pages: Dict[int, bytes]) -> None:
        """Client side: install pushed pages into client memory.

        The installs are the *cloud's* state, not GPU writes — they must
        not re-enter the next pull's dirty set (that would echo every
        push straight back over the uplink).
        """
        for pfn, raw in pages.items():
            self.client_mem.write_page(pfn, raw)
        self.client_mem.clear_dirty_pages(pages)

    # ------------------------------------------------------------------
    def pull(self, metastate_pfns: Iterable[int]
             ) -> Tuple[Dict[int, bytes], int]:
        """Client -> cloud, after the job-completion interrupt."""
        dirty = self.client_mem.take_dirty()
        pfns = self._select(dirty, set(metastate_pfns))
        pages, wire, skipped = self._encode_pages(self.client_mem, pfns)
        self.stats.pulls += 1
        self.stats.pages_pulled += len(pages)
        self.stats.pages_skipped += skipped
        self.stats.raw_pull_bytes += len(pages) * PAGE_SIZE
        self.stats.wire_pull_bytes += wire
        if self.tracer is not None:
            self.tracer.event("memsync-encode", cat="memsync",
                              args={"dir": "pull", "pages": len(pages),
                                    "skipped": skipped, "wire_bytes": wire})
        self._gpu_owned.clear()
        return pages, wire

    def apply_pull(self, pages: Dict[int, bytes]) -> None:
        """Cloud side: install the GPU's updates into cloud memory.

        Only the installed pages leave the dirty set — clearing more
        would also erase the evidence of any spurious cloud write made
        while the GPU owned the memory (§5's trap must still fire at the
        next push).
        """
        for pfn, raw in pages.items():
            self.cloud_mem.write_page(pfn, raw)
        self.cloud_mem.clear_dirty_pages(pages)

    # ------------------------------------------------------------------
    def prime_client_baseline(self) -> None:
        """Reset the client's dirty tracker at session start so the first
        pull reflects only GPU writes."""
        self.client_mem.clear_dirty()
