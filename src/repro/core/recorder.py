"""Record-session orchestration and the four evaluated recorders.

A :class:`RecordSession` wires the whole GR-T architecture together for
one (client, workload) pair:

client TEE side                      cloud side
---------------                      ----------
TZASC + OP-TEE + GPUShim      <----> CloudService -> VM (device tree,
MaliGpu + client memory        link   GPU stack: driver + runtime + ML
                                      framework) on DriverShim + memsync

and runs the workflow of §3.1: attest, establish a secure channel, boot
the dedicated VM, dry-run the workload with zero-filled data, download the
signed recording.

The recorder variants of §7.2 are :data:`NAIVE`, :data:`OURS_M`,
:data:`OURS_MD` and :data:`OURS_MDS`.  Misprediction recovery (§4.2) is
driven from here: on :class:`MispredictionDetected` the session reboots
the VM (driver reload + shader recompilation, the dominant rollback cost
the paper measures) and re-runs with the validated log prefix as a
fast-forward feed while the client replays the same prefix locally.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.check.specsan import SpecSan

import numpy as np

from repro.cloud.service import CloudService
from repro.core.drivershim import CloudPlatform, DriverShim, FastForwardFeed, ShimModes
from repro.core.gpushim import GpuShim
from repro.core.memsync import MemorySynchronizer, MemSyncStats, SyncPolicy
from repro.core.recording import Recording
from repro.core.replayer import replay_entries
from repro.core.speculation import (
    CommitHistory,
    MispredictionDetected,
    SpeculationStats,
)
from repro.driver.driver import KbaseDevice
from repro.hw.clocks import SocClockController
from repro.hw.gpu import MaliGpu
from repro.hw.memory import PhysicalMemory
from repro.hw.sku import GpuSku, HIKEY960_G71
from repro.kernel.devicetree import board_device_tree
from repro.kernel.env import KernelEnv
from repro.ml.graph import Graph
from repro.ml.models import build_model
from repro.ml.runner import WorkloadRunner, required_memory_bytes
from repro.obs.metrics import StatsBase
from repro.resilience.channel import ChannelDisconnected, ReliableChannel
from repro.resilience.checkpoint import SessionCheckpointer
from repro.resilience.faults import FaultInjector, FaultPlan
from repro.runtime.api import GpuContext
from repro.runtime.flavors import flavor_for_image
from repro.sim.clock import VirtualClock
from repro.sim.energy import EnergyMeter
from repro.sim.network import (
    WIFI,
    Link,
    LinkProfile,
    Message,
    NetworkStats,
    SecureChannel,
)
from repro.tee.attestation import AttestationVerifier
from repro.tee.optee import OpTeeOS


@dataclass(frozen=True)
class RecorderConfig:
    """One recorder variant: which techniques are enabled."""

    name: str
    meta_only_sync: bool
    defer: bool
    speculate: bool
    offload_polls: bool
    compress: bool
    spec_window: int = 3

    @property
    def sync_policy(self) -> str:
        return SyncPolicy.META_ONLY if self.meta_only_sync else SyncPolicy.FULL

    def modes(self) -> ShimModes:
        return ShimModes(defer=self.defer, speculate=self.speculate,
                         offload_polls=self.offload_polls)


NAIVE = RecorderConfig("Naive", meta_only_sync=False, defer=False,
                       speculate=False, offload_polls=False, compress=False)
OURS_M = RecorderConfig("OursM", meta_only_sync=True, defer=False,
                        speculate=False, offload_polls=False, compress=True)
OURS_MD = RecorderConfig("OursMD", meta_only_sync=True, defer=True,
                         speculate=False, offload_polls=False, compress=True)
OURS_MDS = RecorderConfig("OursMDS", meta_only_sync=True, defer=True,
                          speculate=True, offload_polls=True, compress=True)

RECORDER_VARIANTS = (NAIVE, OURS_M, OURS_MD, OURS_MDS)


@dataclass
class RecordStats(StatsBase):
    """Everything §7 reports about one record run."""

    SCHEMA = "repro.record"
    _NESTED = {"commits": SpeculationStats, "memsync": MemSyncStats}
    _IDENTITY = ("seed",)

    workload: str
    recorder: str
    link: str
    seed: int = 0  # the dry run is a pure function of (workload, seed)
    recording_delay_s: float = 0.0
    blocking_rtts: int = 0
    reg_accesses: int = 0
    client_reads_applied: int = 0
    gpu_jobs: int = 0
    commits: Optional[SpeculationStats] = None
    memsync: Optional[MemSyncStats] = None
    network_bytes: int = 0
    recording_bytes: int = 0
    # Content digest of the produced recording (sha256 hex of the
    # unsigned body) — the fleet registry's compiled-cache key.
    recording_digest: str = ""
    client_energy_j: float = 0.0
    timeout_violations: int = 0
    recoveries: int = 0
    recovery_delay_s: float = 0.0
    vm_seconds: float = 0.0
    timeline_by_label: Dict[str, float] = field(default_factory=dict)
    # Resilience (repro.resilience): zero / None on a perfect link.
    fault_plan: Optional[str] = None
    resumes: int = 0
    checkpoints: int = 0
    net_retries: int = 0
    net_timeouts: int = 0
    redundant_bytes: int = 0

    @property
    def accesses_per_commit(self) -> float:
        if self.commits is None or self.commits.commits_total == 0:
            return 0.0
        return self.reg_accesses / self.commits.commits_total


@dataclass
class RecordResult:
    recording: Recording
    stats: RecordStats
    output: np.ndarray  # dry-run output (garbage; proves the jobs ran)
    # The cloud's recording-signature verify key, so a result can be fed
    # straight to repro.replay() without plumbing the service around.
    verify_key: Optional[object] = None


class InsufficientSecureMemory(MemoryError):
    """§3.1: recording needs as much TEE memory as the workload's actual
    run; the pre-configured secure carveout is too small."""


class RecordSession:
    """One client TEE recording one workload through one cloud session."""

    def __init__(self, workload: Union[str, Graph],
                 config: RecorderConfig = OURS_MDS,
                 sku: GpuSku = HIKEY960_G71,
                 link_profile: LinkProfile = WIFI,
                 seed: int = 0,
                 history: Optional[CommitHistory] = None,
                 service: Optional[CloudService] = None,
                 client_id: str = "client-0",
                 max_recovery_attempts: int = 3,
                 secure_mem_limit: Optional[int] = None,
                 image: Optional[str] = None,
                 sanitizer: Optional["SpecSan"] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 max_resume_attempts: int = 8,
                 checkpointer: Optional[SessionCheckpointer] = None,
                 tracer=None) -> None:
        self.graph = build_model(workload) if isinstance(workload, str) \
            else workload
        self.config = config
        self.sku = sku
        self.link_profile = link_profile
        self.seed = seed
        self.history = history if history is not None \
            else CommitHistory(config.spec_window)
        self.service = service or CloudService()
        self.client_id = client_id
        self.max_recovery_attempts = max_recovery_attempts
        # Which GPU-stack variant the cloud should dry-run (§3.1); None
        # lets the service pick by driver family.
        self.image = image
        # Optional runtime invariant sanitizer (repro.check.SpecSan);
        # re-installed on every attempt since each builds a fresh env/shim.
        self.sanitizer = sanitizer
        # Optional WAN fault injection (repro.resilience).  The injector
        # persists across attempts: a resumed session continues the fault
        # schedule rather than restarting it.
        self.fault_plan = fault_plan
        self._injector = (FaultInjector(fault_plan)
                          if fault_plan is not None else None)
        self.max_resume_attempts = max_resume_attempts
        self.checkpointer = checkpointer
        if self.checkpointer is None and fault_plan is not None:
            self.checkpointer = SessionCheckpointer()
        if self.checkpointer is not None and sanitizer is not None:
            self.checkpointer.sanitizer = sanitizer
        # Optional repro.obs.Tracer threaded through the shim, memsync
        # and history; None keeps every hook on the fast path.
        self.tracer = tracer
        self._mem_size = required_memory_bytes(self.graph)
        if secure_mem_limit is not None and self._mem_size > secure_mem_limit:
            raise InsufficientSecureMemory(
                f"workload {self.graph.name!r} needs "
                f"{self._mem_size >> 20} MiB of secure memory; the TEE "
                f"carveout is {secure_mem_limit >> 20} MiB — the SoC "
                f"firmware must enlarge it (§3.1)")
        self._inject_read_faults: List[Tuple[int, int]] = []

    # ------------------------------------------------------------------
    def inject_fault_at_read(self, read_index: int,
                             xor_mask: int = 0xDEAD) -> None:
        """Corrupt the value of the Nth client register read on the first
        attempt — §7.3's misprediction experiment."""
        self._inject_read_faults.append((read_index, xor_mask))

    # ------------------------------------------------------------------
    def run(self) -> RecordResult:
        clock = VirtualClock()
        tracer = self.tracer
        if tracer is not None:
            tracer.set_clock(clock)
            tracer.begin("record", cat="session",
                         args={"workload": self.graph.name,
                               "recorder": self.config.name,
                               "link": self.link_profile.name})
        try:
            return self._run(clock)
        finally:
            if tracer is not None:
                tracer.end()

    def _run(self, clock: VirtualClock) -> RecordResult:
        tracer = self.tracer
        prefix = None
        recoveries = 0
        self._resumes = 0
        self._vm_seconds = 0.0
        self._net_carry = NetworkStats()
        base_depth = tracer.depth() if tracer is not None else 0
        while True:
            first_attempt = recoveries == 0 and self._resumes == 0
            try:
                return self._attempt(clock, prefix, recoveries,
                                     inject=first_attempt)
            except MispredictionDetected as exc:
                recoveries += 1
                if tracer is not None:
                    tracer.unwind_to(base_depth)
                    tracer.event(
                        "misprediction-recovery", cat="speculation",
                        args={"recoveries": recoveries,
                              "safe_log_position": exc.safe_log_position})
                if recoveries > self.max_recovery_attempts:
                    raise
                # Both sides roll back to the last validated log position
                # and fast-forward independently (§4.2).
                prefix = self._last_log[:exc.safe_log_position]
            except ChannelDisconnected as exc:
                self._resumes += 1
                if tracer is not None:
                    tracer.unwind_to(base_depth)
                    tracer.event(
                        "disconnect-resume", cat="resilience",
                        args={"resumes": self._resumes,
                              "resume_at_s": exc.resume_at_s})
                if self._resumes > self.max_resume_attempts:
                    raise
                # The VM is gone (the finally-close in _attempt destroyed
                # it); the aborted attempt's traffic still counts.
                self._net_carry = self._net_carry.merged_with(
                    self._attempt_net)
                if exc.resume_at_s > clock.now:
                    clock.advance_to(exc.resume_at_s, label="disconnect")
                # Resume from the last checkpoint on a fresh VM: replay
                # the verified prefix (the misprediction machinery, §4.2)
                # and restore the speculation history the dead VM held.
                prefix = self.checkpointer.resume_prefix() \
                    if self.checkpointer is not None else []
                checkpoint = (self.checkpointer.latest()
                              if self.checkpointer is not None else None)
                if checkpoint is not None:
                    self.history.restore(checkpoint.history)

    # ------------------------------------------------------------------
    def _attempt(self, clock: VirtualClock, prefix, recoveries: int,
                 inject: bool) -> RecordResult:
        attempt_start = clock.now
        tracer = self.tracer
        if tracer is not None:
            tracer.begin("attempt", cat="session",
                         args={"recoveries": recoveries,
                               "resumes": self._resumes})
        # --- client side -------------------------------------------------
        client_mem = PhysicalMemory(size=self._mem_size)
        optee = OpTeeOS()
        optee.tzasc.static_reserve(client_mem.base, client_mem.size)
        gpu = MaliGpu(self.sku, client_mem, clock)
        clk = SocClockController(gpu, optee.tzasc)
        gpushim = GpuShim(optee, gpu, clock, clk=clk)
        optee.load_module(gpushim)
        for index, mask in (self._inject_read_faults if inject else []):
            gpushim.corrupt_read_at(index, mask)

        # --- open the cloud session (attested) ---------------------------
        device_tree = board_device_tree(self.sku)
        nonce = hashlib.sha256(
            f"{self.client_id}:{clock.now}:{recoveries}".encode()).digest()
        compatible = device_tree.find(f"gpu@{0xE82C0000:x}").compatible
        image_name = self.image or self.service.image_for_family(compatible)
        ticket = self.service.open_session(self.client_id, image_name,
                                           device_tree, nonce, clock=clock)
        vm_open_time = clock.now
        verifier = AttestationVerifier(self.service.root.key)
        verifier.allow_image(ticket.vm.image.measurement_blob())
        verifier.verify(ticket.attestation, nonce)

        link = Link(self.link_profile, clock)
        if self._injector is not None:
            # Reliable channel over the faulty link: every fault-induced
            # delay is charged while GPUShim clock-gates the GPU
            # (gpu.shift_events), so the recording stays byte-identical
            # to a fault-free run.
            link = ReliableChannel(link, self._injector,
                                   hold=gpu.shift_events,
                                   tracer=self.tracer)
        self._attempt_net = link.stats
        channel = SecureChannel(link)
        channel.establish(ticket.session_id, attested=True)
        ticket.vm.boot(clock)

        # --- cloud side ---------------------------------------------------
        cloud_mem = PhysicalMemory(size=self._mem_size)
        memsync = MemorySynchronizer(cloud_mem, client_mem,
                                     policy=self.config.sync_policy,
                                     compress_enabled=self.config.compress)
        shim = DriverShim(link, gpushim, memsync, self.config.modes(),
                          history=self.history, tracer=self.tracer)
        memsync.tracer = self.tracer
        self.history.tracer = self.tracer
        shim.checkpointer = self.checkpointer
        env = KernelEnv(clock, name="cloud-vm")
        shim.attach(env)
        if self.sanitizer is not None:
            self.sanitizer.install(env, shim)
        platform = CloudPlatform(gpushim, shim, link)
        env.platform = platform

        gpushim.begin_session()
        memsync.prime_client_baseline()

        kbdev = KbaseDevice(env, shim, cloud_mem)
        platform.attach(kbdev)

        if prefix:
            shim.feed = FastForwardFeed(list(prefix))
            # The client independently replays the recorded stimuli onto
            # its reset GPU — no network involved (§4.2).
            replay_entries(gpushim.gpu, client_mem, clock, prefix,
                           skip_pfns=())
            gpushim.log = list(prefix)
            shim.last_validated_position = len(prefix)
            memsync.prime_client_baseline()

        try:
            kbdev.probe()
            ctx = GpuContext(kbdev, cloud_mem,
                             flavor=flavor_for_image(image_name))
            runner = WorkloadRunner(ctx, self.graph, seed=self.seed)
            shim.metastate_provider = lambda: (
                set(ctx.aspace.metastate_pfns())
                | kbdev.mmu_tables.metastate_pfns())
            self._zero_fill(runner, cloud_mem)
            self._last_log = gpushim.log  # live reference for recovery
            # Segment markers are suppressed while fast-forwarding: the
            # recovered prefix already contains them.
            def _node_callback(i, name):
                if shim.ff_active:
                    return None
                if tracer is not None:
                    tracer.event(name, cat="segment", args={"index": i})
                return gpushim.mark(name)

            output = runner.run(input_array=None,
                                node_callback=_node_callback)
            kbdev.teardown()
            shim.finish()
        except MispredictionDetected:
            self._last_log = gpushim.log
            raise
        except ChannelDisconnected as exc:
            self._last_log = gpushim.log
            exc.safe_log_position = shim.last_validated_position
            raise
        finally:
            self.service.close_session(ticket.session_id, clock=clock)
            self._vm_seconds += clock.now - vm_open_time

        # --- recording assembly + download --------------------------------
        recording = Recording(
            workload=self.graph.name,
            recorder=self.config.name,
            sku_fingerprint=self.sku.fingerprint(),
            manifest=runner.manifest,
            data_pfns=tuple(sorted(set(ctx.aspace.data_pfns()))),
            entries=list(gpushim.log),
        )
        body = recording.body_bytes()
        recording.signature = self.service.sign_recording(body)
        blob_len = len(body) + 32
        link.send_to_client(Message("recording-download", blob_len),
                            blocking=True)
        if tracer is not None:
            tracer.event("recording-download", cat="network",
                         args={"bytes": blob_len})
        gpushim.end_session()

        # --- statistics ----------------------------------------------------
        meter = EnergyMeter()
        # Aborted attempts' traffic (disconnect resumes) still counts.
        net = link.stats.merged_with(self._net_carry)
        stats = RecordStats(
            workload=self.graph.name,
            recorder=self.config.name,
            link=self.link_profile.name,
            seed=self.seed,
            recording_delay_s=clock.now,
            blocking_rtts=(net.blocking_round_trips
                           + shim.stats.validation_stalls),
            reg_accesses=shim.reg_accesses,
            client_reads_applied=gpushim.reads_applied,
            gpu_jobs=runner.manifest.total_jobs,
            commits=shim.stats,
            memsync=memsync.stats,
            network_bytes=net.total_bytes,
            recording_bytes=blob_len,
            recording_digest=recording.digest(),
            client_energy_j=meter.record_energy_j(clock.timeline, net),
            timeout_violations=(kbdev.jobs.timeout_violations
                                + kbdev.timing_violations),
            recoveries=recoveries,
            recovery_delay_s=(clock.now - attempt_start) if recoveries else 0.0,
            vm_seconds=self._vm_seconds,
            timeline_by_label=clock.timeline.by_label(),
            fault_plan=(self.fault_plan.name
                        if self.fault_plan is not None else None),
            resumes=self._resumes,
            checkpoints=(self.checkpointer.captures
                         if self.checkpointer is not None else 0),
            net_retries=net.retries,
            net_timeouts=net.timeouts,
            redundant_bytes=net.redundant_bytes,
        )
        if tracer is not None:
            tracer.end(args={"delay_s": clock.now - attempt_start})
        return RecordResult(recording=recording, stats=stats, output=output,
                            verify_key=self.service.recording_key)

    # ------------------------------------------------------------------
    @staticmethod
    def _zero_fill(runner: WorkloadRunner, mem: PhysicalMemory) -> None:
        """§5: the dry run fills the workload's inputs and parameters with
        zeros.  The writes still happen (as a real framework's weight
        upload would), so Naive's full sync pays for them while meta-only
        sync ignores them."""
        for binding in runner.manifest.bindings:
            if binding.kind in ("input", "weight", "bias"):
                mem.fill(binding.pa, binding.size, 0)
