"""GR-T core: the paper's contribution.

Everything below :mod:`repro.core` implements §3-§5 of the paper on top of
the substrate packages:

* :mod:`repro.core.symbolic` — lazy symbolic register values (the
  instrumentation's dependency tracking, §4.1);
* :mod:`repro.core.deferral` — per-thread deferral queues and commits;
* :mod:`repro.core.speculation` — commit history, value prediction,
  taint tracking, validation (§4.2); polling-loop offload and predicate
  speculation (§4.3) live in :mod:`repro.core.drivershim`;
* :mod:`repro.core.memsync` — meta-only memory synchronization with
  delta + run-length compression (§5);
* :mod:`repro.core.drivershim` / :mod:`repro.core.gpushim` — the two
  recorder shims (§3.2);
* :mod:`repro.core.recording` — the signed recording format;
* :mod:`repro.core.recorder` — record-session orchestration and the
  four evaluated configurations (Naive / OursM / OursMD / OursMDS);
* :mod:`repro.core.replayer` — the in-TEE replayer (§2.3);
* :mod:`repro.core.recovery` — misprediction rollback / fast-forward.
"""

from repro.core.recorder import (
    RecorderConfig,
    RecordSession,
    RecordResult,
    NAIVE,
    OURS_M,
    OURS_MD,
    OURS_MDS,
    RECORDER_VARIANTS,
)
from repro.core.recording import Recording, RecordingFormatError
from repro.core.replayer import Replayer, ReplaySession, ReplayResult, ReplayError
from repro.core.speculation import MispredictionDetected
from repro.core.testbed import ClientDevice, native_run, NativeResult

__all__ = [
    "RecorderConfig",
    "RecordSession",
    "RecordResult",
    "NAIVE",
    "OURS_M",
    "OURS_MD",
    "OURS_MDS",
    "RECORDER_VARIANTS",
    "Recording",
    "RecordingFormatError",
    "Replayer",
    "ReplaySession",
    "ReplayResult",
    "ReplayError",
    "MispredictionDetected",
    "ClientDevice",
    "native_run",
    "NativeResult",
]
