"""GPUShim: the client-TEE half of the recorder (§3.2).

Instantiated as a TEE module, GPUShim:

* isolates the GPU for the duration of a session (locks the MMIO region
  and GPU interrupts to the secure world, resets the GPU before and after);
* applies commit batches from the cloud to the physical GPU — executing
  reads, evaluating write expressions against this batch's read values,
  and returning the read environment;
* runs offloaded polling loops locally against the GPU (§4.3);
* installs pushed memory pages and collects post-job dumps (§5);
* forwards GPU interrupts to the cloud;
* keeps the authoritative interaction log — the ground truth of what the
  GPU experienced, which becomes the recording.

Fault injection (`corrupt_read_at`) supports §7.3's misprediction
experiment: it flips bits in the value returned by the Nth register read,
standing in for flaky hardware or a transmission error.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.deferral import CommitRequest
from repro.core.recording import (
    Entry,
    IrqEntry,
    Marker,
    MemUpload,
    MemWrite,
    PollEntry,
    RegRead,
    RegWrite,
)
from repro.core.symbolic import evaluate_wire
from repro.driver.bus import LocalBus, PollSpec
from repro.tee.optee import OpTeeOS, TeeModule
from repro.tee.worlds import GpuMmioGuard, TrustZoneController, World


class GpuShim(TeeModule):
    name = "gpushim"

    def __init__(self, optee: OpTeeOS, gpu, clock, clk=None) -> None:
        super().__init__()
        self.optee = optee
        self.tzasc: TrustZoneController = optee.tzasc
        # All GPU access goes through a secure-world-tagged MMIO view.
        self.gpu = GpuMmioGuard(gpu, self.tzasc, World.SECURE)
        self.clock = clock
        # Optional SoC clock controller: pinned for determinism (§2.3/§6).
        self.clk = clk
        self.bus = LocalBus(self.gpu, clock)
        self.log: List[Entry] = []
        self.session_active = False
        self.reads_applied = 0
        self.writes_applied = 0
        self._pending_irqs: List[str] = []
        self._corrupt_at: Dict[int, int] = {}  # read index -> xor mask
        gpu.irq_sink = self._irq_raised
        self.register_command("begin", self.begin_session)
        self.register_command("end", self.end_session)

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    def begin_session(self) -> None:
        """Lock the GPU into the TEE and reset all hardware state."""
        if self.session_active:
            raise RuntimeError("GPUShim session already active")
        self.tzasc.lock_gpu_to_secure()
        if self.clk is not None:
            # Pin the GPU clock at max: DVFS reacting to measured timing
            # would make record nondeterministic (§2.3, §6).
            self.clk.pin_max()
        self.gpu.hard_reset_now()
        self._pending_irqs.clear()
        self.log = []
        self.session_active = True

    def end_session(self) -> None:
        """Reset the GPU and hand it back to the normal world (§3.2:
        "before and after the replay, it resets the GPU and cleans up all
        the hardware state")."""
        if not self.session_active:
            return
        self.gpu.hard_reset_now()
        if self.clk is not None:
            self.clk.unpin()
        self.tzasc.release_gpu()
        self.session_active = False

    def _require_session(self) -> None:
        if not self.session_active:
            raise RuntimeError("no active GPUShim session")

    # ------------------------------------------------------------------
    # Commit application
    # ------------------------------------------------------------------
    def apply_commit(self, request: CommitRequest) -> Dict[int, int]:
        """Execute a commit's ops in order; return {sym_id: value}."""
        self._require_session()
        env: Dict[int, int] = {}
        for op in request.ops:
            if op[0] == "r":
                _, offset, sym_id = op
                value = self.bus.read32(offset)
                mask = self._corrupt_at.pop(self.reads_applied, None)
                if mask is not None:
                    value ^= mask
                self.reads_applied += 1
                env[sym_id] = value
                self.log.append(RegRead(offset=offset, value=value))
            else:
                _, offset, wire = op
                value = evaluate_wire(wire, env) & 0xFFFF_FFFF
                self.bus.write32(offset, value)
                self.writes_applied += 1
                self.log.append(RegWrite(offset=offset, value=value))
        return env

    # ------------------------------------------------------------------
    # Offloaded polling loops (§4.3)
    # ------------------------------------------------------------------
    def execute_poll(self, spec: PollSpec):
        self._require_session()
        result = self.bus.poll(spec)
        self.log.append(PollEntry(
            offset=spec.offset, condition=spec.condition,
            operand=spec.operand, value=result.value,
            iterations=result.iterations))
        return result

    # ------------------------------------------------------------------
    # Memory synchronization hooks (§5)
    # ------------------------------------------------------------------
    def note_mem_write(self, pages: Dict[int, bytes]) -> None:
        self.log.append(MemWrite(pages=tuple(sorted(pages.items()))))

    def note_mem_upload(self, nbytes: int) -> None:
        self.log.append(MemUpload(nbytes=nbytes))

    def mark(self, label: str) -> None:
        """Segment boundary (one per NN layer, Figure 2)."""
        self.log.append(Marker(label=label))

    # ------------------------------------------------------------------
    # Interrupt forwarding
    # ------------------------------------------------------------------
    def _irq_raised(self, line: str) -> None:
        if self.tzasc.gpu_irq_routed_to != World.SECURE:
            return  # normal-world IRQ: not ours
        self._pending_irqs.append(line)

    def take_pending_irq(self) -> Optional[str]:
        """Next IRQ line to forward, if the GPU has one pending."""
        self._require_session()
        line = self.gpu.any_irq_pending()
        if line is not None:
            self.log.append(IrqEntry(line=line))
        return line

    # ------------------------------------------------------------------
    # Fault injection for the misprediction experiment (§7.3)
    # ------------------------------------------------------------------
    def corrupt_read_at(self, read_index: int, xor_mask: int = 0xDEAD) -> None:
        self._corrupt_at[read_index] = xor_mask

    # ------------------------------------------------------------------
    def log_position(self) -> int:
        return len(self.log)

    def truncate_log(self, position: int) -> List[Entry]:
        """Drop entries past ``position`` (rollback discard)."""
        dropped = self.log[position:]
        self.log = self.log[:position]
        return dropped
