"""Lazy symbolic register values: the deferral engine's data layer (§4.1).

A deferred register read returns a :class:`SymVal` instead of an integer.
Arithmetic and bitwise operations on it build :class:`SymExpr` trees, so
data dependencies propagate through driver state exactly as the paper's
instrumented driver propagates symbols.  Demanding a concrete value —
``bool()`` in a branch (control dependency), ``int()``/``%`` formatting in
a ``printk`` (externalization) — calls back into the owning shim, which
commits the enclosing batch and resolves the symbols in place.  From then
on every expression referencing them evaluates concretely.

Expressions also serialize to a small wire form so a register *write*
whose value depends on uncommitted reads can be shipped inside the same
commit and evaluated by the client against the fresh read values
(Listing 1(a): ``WRITE(MMU_CONFIG, S2 | 0x10)``).
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

Wire = Union[int, Tuple]  # wire form: int | ("sym",id) | ("bin",op,a,b) | ("un",op,a)

_BIN_OPS = {
    "or": lambda a, b: a | b,
    "and": lambda a, b: a & b,
    "xor": lambda a, b: a ^ b,
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "shl": lambda a, b: a << b,
    "shr": lambda a, b: a >> b,
}

_UN_OPS = {
    "inv": lambda a: ~a,
    "neg": lambda a: -a,
}


class UnresolvedValueError(RuntimeError):
    """A symbolic value was evaluated before its commit resolved it."""


class LazyInt:
    """Base of the symbolic integer hierarchy."""

    __slots__ = ()

    # -- resolution interface -------------------------------------------
    @property
    def resolved(self) -> bool:
        raise NotImplementedError

    def evaluate(self) -> int:
        raise NotImplementedError

    def force(self) -> int:
        """Resolve (committing through the shim if needed) and evaluate."""
        if not self.resolved:
            shim = self._find_shim()
            if shim is None:
                raise UnresolvedValueError(
                    "symbolic value has no owning shim to resolve it")
            shim.force_resolution(self)
        return self.evaluate()

    def _find_shim(self):
        raise NotImplementedError

    def symbols(self) -> List["SymVal"]:
        """All SymVals referenced by this expression."""
        raise NotImplementedError

    def wire(self) -> Wire:
        raise NotImplementedError

    @property
    def tainted(self) -> bool:
        return any(s.taint for s in self.symbols())

    # -- coercion: the commit triggers ----------------------------------
    def __bool__(self) -> bool:
        return bool(self.force())

    def __int__(self) -> int:
        return self.force()

    def __index__(self) -> int:
        return self.force()

    def __format__(self, spec: str) -> str:
        # Formatting externalizes the value: force it concrete.
        return format(self.force(), spec)

    # -- operator overloads building expression trees -------------------
    def _bin(self, op: str, other, swap: bool = False) -> "LazyInt":
        if not isinstance(other, (int, LazyInt)):
            return NotImplemented
        a, b = (other, self) if swap else (self, other)
        return SymExpr(op, (a, b))

    def __or__(self, other):
        return self._bin("or", other)

    def __ror__(self, other):
        return self._bin("or", other, swap=True)

    def __and__(self, other):
        return self._bin("and", other)

    def __rand__(self, other):
        return self._bin("and", other, swap=True)

    def __xor__(self, other):
        return self._bin("xor", other)

    def __rxor__(self, other):
        return self._bin("xor", other, swap=True)

    def __add__(self, other):
        return self._bin("add", other)

    def __radd__(self, other):
        return self._bin("add", other, swap=True)

    def __sub__(self, other):
        return self._bin("sub", other)

    def __rsub__(self, other):
        return self._bin("sub", other, swap=True)

    def __lshift__(self, other):
        return self._bin("shl", other)

    def __rlshift__(self, other):
        return self._bin("shl", other, swap=True)

    def __rshift__(self, other):
        return self._bin("shr", other)

    def __rrshift__(self, other):
        return self._bin("shr", other, swap=True)

    def __invert__(self):
        return SymExpr("inv", (self,))

    def __neg__(self):
        return SymExpr("neg", (self,))


class SymVal(LazyInt):
    """One deferred register read's (future) value."""

    __slots__ = ("sym_id", "shim", "_value", "taint", "origin")

    def __init__(self, sym_id: int, shim, origin: str = "") -> None:
        self.sym_id = sym_id
        self.shim = shim
        self._value: Optional[int] = None
        self.taint = False
        self.origin = origin  # e.g. register name, for diagnostics

    @property
    def resolved(self) -> bool:
        return self._value is not None

    def resolve(self, value: int, tainted: bool = False) -> None:
        self._value = int(value)
        self.taint = tainted

    def untaint(self) -> None:
        self.taint = False

    def evaluate(self) -> int:
        if self._value is None:
            raise UnresolvedValueError(
                f"symbol S{self.sym_id} ({self.origin}) is unresolved")
        return self._value

    def _find_shim(self):
        return self.shim

    def symbols(self) -> List["SymVal"]:
        return [self]

    def wire(self) -> Wire:
        return ("sym", self.sym_id)

    def __repr__(self) -> str:
        state = self._value if self.resolved else "?"
        return f"S{self.sym_id}[{self.origin}]={state}"


class SymExpr(LazyInt):
    """An operator node over lazy and concrete operands."""

    __slots__ = ("op", "args")

    def __init__(self, op: str, args: Tuple) -> None:
        self.op = op
        self.args = args

    @property
    def resolved(self) -> bool:
        return all(a.resolved for a in self.args if isinstance(a, LazyInt))

    def evaluate(self) -> int:
        vals = [a.evaluate() if isinstance(a, LazyInt) else a
                for a in self.args]
        if self.op in _BIN_OPS:
            return _BIN_OPS[self.op](vals[0], vals[1])
        if self.op in _UN_OPS:
            return _UN_OPS[self.op](vals[0])
        raise ValueError(f"unknown symbolic op {self.op!r}")

    def _find_shim(self):
        for s in self.symbols():
            if s.shim is not None:
                return s.shim
        return None

    def symbols(self) -> List[SymVal]:
        out: List[SymVal] = []
        for a in self.args:
            if isinstance(a, LazyInt):
                out.extend(a.symbols())
        return out

    def wire(self) -> Wire:
        parts = [a.wire() if isinstance(a, LazyInt) else int(a)
                 for a in self.args]
        if len(parts) == 2:
            return ("bin", self.op, parts[0], parts[1])
        return ("un", self.op, parts[0])

    def __repr__(self) -> str:
        return f"({self.op} {' '.join(map(repr, self.args))})"


def concrete(value: Union[int, LazyInt]) -> int:
    """Coerce to int, forcing resolution if symbolic."""
    if isinstance(value, LazyInt):
        return value.force()
    return int(value)


def is_unresolved(value) -> bool:
    return isinstance(value, LazyInt) and not value.resolved


def evaluate_wire(expr: Wire, env) -> int:
    """Client-side evaluation of a wire expression against the read
    environment of the current commit (sym id -> concrete value)."""
    if isinstance(expr, int):
        return expr
    kind = expr[0]
    if kind == "sym":
        sym_id = expr[1]
        if sym_id not in env:
            raise UnresolvedValueError(
                f"wire expression references S{sym_id} not in this commit")
        return env[sym_id]
    if kind == "bin":
        _, op, a, b = expr
        return _BIN_OPS[op](evaluate_wire(a, env), evaluate_wire(b, env))
    if kind == "un":
        _, op, a = expr
        return _UN_OPS[op](evaluate_wire(a, env))
    raise ValueError(f"malformed wire expression {expr!r}")
