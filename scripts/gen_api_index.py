#!/usr/bin/env python3
"""Regenerate docs/API.md from module docstrings."""
import ast
import os


def main() -> None:
    rows = []
    for root, dirs, files in sorted(os.walk("src/repro")):
        dirs.sort()
        for f in sorted(files):
            if not f.endswith(".py") or f == "__main__.py":
                continue
            path = os.path.join(root, f)
            mod = path[len("src/"):-3].replace("/", ".")
            if mod.endswith(".__init__"):
                mod = mod[:-9]
            tree = ast.parse(open(path).read())
            doc = ast.get_docstring(tree) or ""
            summary = doc.split("\n\n")[0].replace("\n", " ").strip()
            symbols = [node.name for node in tree.body
                       if isinstance(node, (ast.ClassDef, ast.FunctionDef))
                       and not node.name.startswith("_")]
            rows.append((mod, summary, symbols))

    out = ["# API index", "",
           "Generated from module docstrings "
           "(`python scripts/gen_api_index.py` regenerates it).", ""]
    current_pkg = None
    for mod, summary, symbols in rows:
        pkg = ".".join(mod.split(".")[:2])
        if pkg != current_pkg:
            out.append(f"\n## `{pkg}`\n")
            current_pkg = pkg
        out.append(f"### `{mod}`\n")
        if summary:
            out.append(summary + "\n")
        if symbols:
            out.append("Public: "
                       + ", ".join(f"`{s}`" for s in symbols) + "\n")
    # Hand-maintained appendix (formats, invariants) survives regeneration.
    if os.path.exists("docs/_api_appendix.md"):
        out.append("\n" + open("docs/_api_appendix.md").read().rstrip())
    os.makedirs("docs", exist_ok=True)
    with open("docs/API.md", "w") as fh:
        fh.write("\n".join(out) + "\n")
    print(f"wrote docs/API.md: {len(rows)} modules")


if __name__ == "__main__":
    main()
