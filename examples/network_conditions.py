#!/usr/bin/env python3
"""How network conditions shape recording delay (§3.3, §7.2).

Sweeps RTT and bandwidth around the paper's WiFi/cellular operating
points and shows how each GR-T technique changes the sensitivity:

* Naive forwarding scales linearly with RTT (every register access is a
  round trip) — unusable beyond LAN latencies;
* deferral divides the RTT coefficient by the batch size;
* speculation makes most commits asynchronous, nearly flattening the
  curve until only the per-job synchronous residue remains.

Run:  python examples/network_conditions.py
"""

from repro import NAIVE, OURS_M, OURS_MD, OURS_MDS, RecordSession
from repro.core.speculation import CommitHistory
from repro.ml.models import mnist
from repro.sim.network import LinkProfile

RTTS_MS = (5, 20, 50, 100, 200)
BANDWIDTH_BPS = 80e6


def record_delay(config, link, history=None) -> float:
    result = RecordSession(mnist(), config=config, link_profile=link,
                           history=history).run()
    return result.stats.recording_delay_s


def main() -> None:
    print("recording delay (seconds) for MNIST vs round-trip time "
          f"(bandwidth fixed at {BANDWIDTH_BPS/1e6:.0f} Mbps):\n")
    header = f"{'RTT(ms)':>8s}" + "".join(
        f"{c.name:>10s}" for c in (NAIVE, OURS_M, OURS_MD, OURS_MDS))
    print(header)

    for rtt_ms in RTTS_MS:
        link = LinkProfile(name=f"rtt{rtt_ms}", rtt_s=rtt_ms / 1e3,
                           bandwidth_bps=BANDWIDTH_BPS)
        row = f"{rtt_ms:>8d}"
        for config in (NAIVE, OURS_M, OURS_MD):
            row += f"{record_delay(config, link):>10.1f}"
        history = CommitHistory()
        for _ in range(3):
            record_delay(OURS_MDS, link, history)
        row += f"{record_delay(OURS_MDS, link, history):>10.1f}"
        print(row)

    print("\nbandwidth sensitivity at RTT=20 ms (memory-sync-bound "
          "workloads feel this; register-bound ones barely do):\n")
    print(f"{'BW(Mbps)':>9s}{'Naive':>10s}{'OursMDS':>10s}")
    for bw_mbps in (10, 40, 80, 300):
        link = LinkProfile(name=f"bw{bw_mbps}", rtt_s=0.020,
                           bandwidth_bps=bw_mbps * 1e6)
        naive = record_delay(NAIVE, link)
        history = CommitHistory()
        for _ in range(3):
            record_delay(OURS_MDS, link, history)
        mds = record_delay(OURS_MDS, link, history)
        print(f"{bw_mbps:>9d}{naive:>10.1f}{mds:>10.1f}")

    print("\nTakeaway: with all techniques on, recording stays in tens of "
          "seconds even at cellular latencies — the practicality claim "
          "of §7.2.")


if __name__ == "__main__":
    main()
