#!/usr/bin/env python3
"""Quickstart: record an ML workload once via the cloud, then replay it
inside the client TEE on new inputs.

This walks the whole GR-T workflow of §3.1 on the MNIST workload:

1. the client TEE opens an attested session with the cloud service;
2. the cloud dry-runs the GPU stack (driver + runtime + framework) while
   every register access, memory image, and interrupt is exchanged with
   the client's physical GPU over a simulated WiFi link;
3. the signed recording comes back to the client;
4. the client TEE replays it on real input + real model weights — with no
   GPU stack on the device — and we check the result against a pure-numpy
   reference and against native (insecure) execution.

The whole round trip is two calls — ``repro.record`` and
``repro.replay`` — and a shared ``repro.Tracer`` captures both phases
for chrome://tracing.  The constructor-level API (``RecordSession``,
``Replayer``) is still there underneath when a session needs more
control; see docs/API.md.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro
from repro import generate_weights, native_run, reference_forward
from repro.ml.models import mnist


def main() -> None:
    graph = mnist()
    print(f"workload: {graph.name}, input {graph.input_shape}, "
          f"{graph.total_params():,} parameters")

    # ------------------------------------------------------------------
    # 1-3. Record via the cloud (dry run: zero-filled data, §5).
    # ------------------------------------------------------------------
    tracer = repro.Tracer()
    result = repro.record(graph, recorder="OursMDS", network="wifi",
                          trace=tracer)
    stats = result.stats
    print(f"\nrecording done ({stats.recorder}, {stats.link}):")
    print(f"  recording delay : {stats.recording_delay_s:6.1f} s (simulated)")
    print(f"  blocking RTTs   : {stats.blocking_rtts}")
    print(f"  register access : {stats.reg_accesses}")
    print(f"  GPU jobs        : {stats.gpu_jobs}")
    print(f"  memsync traffic : {stats.memsync.wire_total_bytes/1e3:.1f} KB")
    print(f"  client energy   : {stats.client_energy_j:.2f} J")
    blob = result.recording.to_bytes()
    print(f"  recording size  : {len(blob)/1e3:.1f} KB (signed)")
    cats = sorted({r.cat for r in tracer.records() if r.cat})
    print(f"  trace           : {len(tracer)} spans/events "
          f"({', '.join(cats)})")

    # ------------------------------------------------------------------
    # 4. Replay inside the TEE on real data.
    # ------------------------------------------------------------------
    weights = generate_weights(graph, seed=0)
    rng = np.random.RandomState(7)
    print("\nreplaying 3 inferences inside the TEE:")
    for i in range(3):
        image = rng.rand(*graph.input_shape).astype(np.float32)
        # The signature is verified before replay; result carries the
        # cloud's verify key so nothing else needs plumbing.
        out = repro.replay(result, image, weights=weights, trace=tracer)
        expected = reference_forward(graph, weights, image)
        ok = np.allclose(out.output, expected, atol=1e-3)
        print(f"  inference {i}: class={out.output.argmax()} "
              f"delay={out.delay_s*1e3:5.1f} ms "
              f"energy={out.energy_j*1e3:.1f} mJ "
              f"correct={ok}")
        assert ok

    # ------------------------------------------------------------------
    # Compare with native execution (full GPU stack, no TEE).
    # ------------------------------------------------------------------
    image = rng.rand(*graph.input_shape).astype(np.float32)
    native = native_run(graph, image, weights=weights)
    replay = repro.replay(result, image, weights=weights)
    print(f"\nnative (insecure) delay : {native.delay_s*1e3:5.1f} ms")
    print(f"TEE replay delay        : {replay.delay_s*1e3:5.1f} ms "
          f"({100*(native.delay_s-replay.delay_s)/native.delay_s:+.0f}% "
          f"vs native)")
    assert np.allclose(native.output, replay.output, atol=1e-3)
    print("\nnative and TEE-replayed outputs agree; no GPU stack ran on "
          "the device.")

    # ------------------------------------------------------------------
    # Export the combined record+replay trace for chrome://tracing.
    # ------------------------------------------------------------------
    from repro.obs import write_chrome_trace
    path = write_chrome_trace(tracer, "quickstart_trace.json")
    print(f"wrote {path} — load it in chrome://tracing or Perfetto")


if __name__ == "__main__":
    main()
