#!/usr/bin/env python3
"""Secure on-device inference: the paper's motivating scenario (§1, §7.1).

A medical-imaging app owns a *confidential* model and processes
*confidential* images.  The device's OS cannot be trusted, so the GPU
computation must happen inside TrustZone — but nobody wants the
million-line GPU stack inside the TEE.

This example demonstrates the full security story:

* the client TEE refuses unattested clouds;
* during recording, nothing but zeros and metastate leaves the TEE
  (confidentiality of input + parameters);
* the normal-world OS is physically locked out of the GPU while the TEE
  uses it (integrity);
* a tampered recording is rejected (replay integrity);
* inference runs repeatedly in the TEE with correct results.

Run:  python examples/secure_inference.py
"""

import numpy as np

from repro import OURS_MDS, RecordSession, Replayer, generate_weights
from repro.core.recording import MemWrite, Recording, RecordingFormatError
from repro.core.testbed import ClientDevice
from repro.ml.models import mnist
from repro.ml.runner import reference_forward
from repro.sim.network import Link, SecureChannel, WIFI
from repro.sim.clock import VirtualClock
from repro.tee.worlds import GpuMmioGuard, SecurityViolation, World


def check_attestation_enforced() -> None:
    """An unattested cloud never gets a channel."""
    channel = SecureChannel(Link(WIFI, VirtualClock()))
    try:
        channel.establish("rogue-session", attested=False)
    except PermissionError:
        print("  [ok] unattested cloud VM rejected before any data moved")
    else:
        raise AssertionError("unattested cloud accepted!")


def check_confidentiality(recording) -> None:
    """The recording must contain no data pages — the dry run used zeros
    and meta-only sync never ships tensors."""
    data_pfns = set(recording.data_pfns)
    shipped = set()
    for entry in recording.entries:
        if isinstance(entry, MemWrite):
            shipped |= {pfn for pfn, _ in entry.pages}
    assert not shipped & data_pfns
    print(f"  [ok] {len(shipped)} metastate pages in the recording, "
          f"0 of {len(data_pfns)} data pages")


def check_gpu_lockout(device, replay_session, image, weights) -> None:
    """While the TEE replays, the normal-world OS cannot touch the GPU."""
    normal_world = GpuMmioGuard(device.gpu._gpu
                                if hasattr(device.gpu, "_gpu")
                                else device.gpu,
                                device.optee.tzasc, World.NORMAL)
    # Interleave: start checking ownership around a replay.
    device.optee.tzasc.lock_gpu_to_secure()
    try:
        normal_world.read_reg(0x0)
        raise AssertionError("normal world read GPU registers during replay")
    except SecurityViolation:
        print("  [ok] normal-world GPU access trapped while TEE holds GPU")
    finally:
        device.optee.tzasc.release_gpu()


def check_tamper_rejected(replayer, blob: bytes) -> None:
    tampered = bytearray(blob)
    tampered[len(tampered) // 3] ^= 0x40  # flip one bit mid-recording
    try:
        replayer.load(bytes(tampered))
    except RecordingFormatError:
        print("  [ok] tampered recording rejected by signature check")
    else:
        raise AssertionError("tampered recording accepted!")


def main() -> None:
    graph = mnist()
    # The app's confidential assets: never shared with the cloud.
    weights = generate_weights(graph, seed=2024)
    rng = np.random.RandomState(1)
    patient_images = [rng.rand(*graph.input_shape).astype(np.float32)
                      for _ in range(5)]

    print("1. security preconditions")
    check_attestation_enforced()

    print("2. one-time recording via the attested cloud (dry run)")
    session = RecordSession(graph, config=OURS_MDS)
    result = session.run()
    print(f"  recorded {result.stats.gpu_jobs} GPU jobs in "
          f"{result.stats.recording_delay_s:.1f} simulated seconds")
    check_confidentiality(result.recording)

    print("3. replay integrity")
    device = ClientDevice.for_workload(graph)
    replayer = Replayer(device.optee, device.gpu, device.mem, device.clock,
                        verify_key=session.service.recording_key)
    blob = result.recording.to_bytes()
    check_tamper_rejected(replayer, blob)
    recording = replayer.load(blob)

    print("4. confidential inference inside the TEE")
    replay_session = replayer.open(recording, weights)
    check_gpu_lockout(device, replay_session, patient_images[0], weights)
    for i, image in enumerate(patient_images):
        out = replay_session.run(image)
        expected = reference_forward(graph, weights, image)
        assert np.allclose(out.output, expected, atol=1e-3)
        print(f"  image {i}: diagnosis class {out.output.argmax()} "
              f"(confidence {out.output.max():.3f}), "
              f"{out.delay_s*1e3:.1f} ms in TEE")

    print("\nAll security properties held; "
          f"{len(patient_images)} confidential inferences completed with "
          "no GPU stack and no plaintext data outside the TEE.")


if __name__ == "__main__":
    main()
