#!/usr/bin/env python3
"""Record/replay beyond GPUs: a crypto DMA accelerator (§3).

"As replay has been used on IO devices other than GPU, our techniques can
be used for generating recordings for these IO without possessing the
actual IO hardware."

This example drives a crypto accelerator's driver through the *same*
DriverShim/GPUShim pair used for the GPU — deferral batches its register
programming, polling offload collapses its completion wait to one round
trip — then replays the recorded register program inside the TEE to
encrypt fresh, confidential plaintext the cloud never saw.

Run:  python examples/io_device_replay.py
"""

import numpy as np

from repro.core.drivershim import DriverShim, ShimModes
from repro.core.gpushim import GpuShim
from repro.core.memsync import MemorySynchronizer, SyncPolicy
from repro.core.replayer import replay_entries
from repro.driver.bus import PollCondition, PollSpec
from repro.hw import accel as A
from repro.hw.accel import CryptoAccelerator, keystream
from repro.hw.memory import PhysicalMemory
from repro.kernel.env import KernelEnv
from repro.sim.clock import VirtualClock
from repro.sim.network import Link, WIFI
from repro.tee.optee import OpTeeOS

KEY = (0xCAFEBABE, 0x8BADF00D, 0xDEADBEEF, 0x0D15EA5E)
NONCE = 0x77
LENGTH = 8192


def crypto_driver(bus, src_pa, dst_pa):
    """A dozen register accesses: program key/nonce/DMA, start, wait."""
    assert int(bus.read32(A.ACCEL_ID)) == A.ACCEL_ID_VALUE
    bus.write32(A.IRQ_MASK, A.IRQ_DONE | A.IRQ_ERROR)
    for i, word in enumerate(KEY):
        bus.write32(A.KEY0 + 4 * i, word)
    bus.write32(A.NONCE, NONCE)
    bus.write64(A.SRC_LO, A.SRC_HI, src_pa)
    bus.write64(A.DST_LO, A.DST_HI, dst_pa)
    bus.write32(A.LEN, LENGTH)
    bus.write32(A.CMD, A.CMD_START)
    result = bus.poll(PollSpec(offset=A.IRQ_RAWSTAT,
                               condition=PollCondition.BITS_SET,
                               operand=A.IRQ_DONE, max_iters=1000,
                               delay_per_iter_s=5e-6))
    assert result.success
    bus.write32(A.IRQ_CLEAR, int(bus.read32(A.IRQ_RAWSTAT)))


def main() -> None:
    # ---- record: the "cloud" runs the driver; the device stays local ----
    clock = VirtualClock()
    client_mem = PhysicalMemory(size=4 << 20)
    cloud_mem = PhysicalMemory(size=4 << 20)
    device = CryptoAccelerator(client_mem, clock)
    optee = OpTeeOS()
    shim_client = GpuShim(optee, device, clock)
    shim_client.begin_session()
    src = client_mem.alloc(LENGTH, "plaintext")
    dst = client_mem.alloc(LENGTH, "ciphertext")
    client_mem.clear_dirty()

    link = Link(WIFI, clock)
    shim = DriverShim(link, shim_client,
                      MemorySynchronizer(cloud_mem, client_mem,
                                         SyncPolicy.META_ONLY),
                      ShimModes(defer=True, offload_polls=True))
    env = KernelEnv(clock)
    shim.attach(env)
    shim.on_hot_enter(env, "crypto_driver", "other")
    crypto_driver(shim, src.base, dst.base)
    shim.on_hot_exit(env, "crypto_driver", "other")
    shim.finish()
    shim_client.end_session()

    accesses = shim.reg_accesses
    rtts = link.stats.blocking_round_trips
    log = list(shim_client.log)
    print(f"recorded the accelerator driver: {accesses} register accesses "
          f"travelled in {rtts} round trips "
          f"({len(log)} log entries)")

    # ---- replay: fresh device, fresh TEE, confidential data ------------
    clock2 = VirtualClock()
    mem2 = PhysicalMemory(size=4 << 20)
    device2 = CryptoAccelerator(mem2, clock2)
    secret = np.random.RandomState(99).bytes(LENGTH)
    mem2.write(src.base, secret)
    src_pfns = set(range(src.base >> 12, ((src.base + LENGTH - 1) >> 12) + 1))
    replay_entries(device2, mem2, clock2, log, skip_pfns=src_pfns)

    ciphertext = mem2.read(dst.base, LENGTH)
    expected = bytes(a ^ b for a, b in
                     zip(secret, keystream(KEY, NONCE, LENGTH)))
    assert ciphertext == expected
    print(f"replayed on a fresh device: {LENGTH} bytes of new plaintext "
          f"encrypted correctly in {clock2.now*1e3:.2f} simulated ms")
    print("the same core machinery served a device it was never written "
          "for — registers + shared memory + interrupts are all it needs.")


if __name__ == "__main__":
    main()
