#!/usr/bin/env python3
"""Per-layer recordings and partial replay (Figure 2, §2.3).

"Developers run the NN inference once and produce a sequence of
recordings, one for each NN layer ... The granularity of recordings is a
developers' choice as the tradeoff between composability and efficiency."

The recorder marks every layer boundary in the interaction log, so one
monolithic recording can be replayed *per segment*: run the network up to
any layer, inspect the intermediate activation inside the TEE, and decide
whether to continue — e.g. an early-exit classifier that stops as soon as
its confidence is high enough.

Run:  python examples/layer_streaming.py
"""

import numpy as np

from repro import OURS_MDS, RecordSession, Replayer, generate_weights
from repro.core.testbed import ClientDevice
from repro.ml.models import mnist
from repro.ml.runner import reference_activations


def main() -> None:
    graph = mnist()
    session = RecordSession(graph, config=OURS_MDS)
    result = session.run()

    device = ClientDevice.for_workload(graph)
    replayer = Replayer(device.optee, device.gpu, device.mem, device.clock,
                        verify_key=session.service.recording_key)
    recording = replayer.load(result.recording.to_bytes())
    weights = generate_weights(graph, seed=0)
    replay = replayer.open(recording, weights)

    print("recording segments (one per NN layer):")
    segments = recording.segments()
    for label, entries in segments:
        jobs = sum(1 for e in entries
                   if type(e).__name__ == "IrqEntry" and e.line == "job")
        print(f"  {label:10s} {len(entries):5d} entries, {jobs} job(s)")

    rng = np.random.RandomState(13)
    image = rng.rand(*graph.input_shape).astype(np.float32)
    expected = reference_activations(graph, weights, image)

    print("\nstreaming replay, layer by layer "
          "(delay is cumulative per prefix):")
    for node in graph.nodes:
        out = replay.run_prefix(image, upto=node.name)
        ok = np.allclose(out.output, expected[node.name], atol=1e-3)
        print(f"  up to {node.name:10s} -> activation {out.output.shape}, "
              f"{out.delay_s*1e3:6.1f} ms, matches reference: {ok}")
        assert ok

    # Early-exit style use: stop as soon as the FC logits are decisive.
    logits = replay.run_prefix(image, upto="fc3")
    margin = np.sort(logits.output.reshape(-1))[-1] \
        - np.sort(logits.output.reshape(-1))[-2]
    print(f"\nearly-exit check at fc3: top-1 margin {margin:.3f} -> "
          f"{'stop early' if margin > 0.5 else 'run softmax'}")
    full = replay.run(image)
    print(f"full replay class: {full.output.argmax()} "
          f"({full.delay_s*1e3:.1f} ms)")


if __name__ == "__main__":
    main()
