#!/usr/bin/env python3
"""An end-to-end classification task through the TEE (the whole point).

Trains a digit classifier (frozen random convolutional features + a
ridge-regression readout) on synthetic seven-segment digits, records the
network's GPU execution once via the cloud, and then classifies a held-out
test set three ways:

1. pure numpy reference (ground truth),
2. native execution on the device's insecure GPU stack,
3. batched replay inside the TrustZone TEE.

All three must agree digit for digit — the TEE path costs nothing in
task quality — and retraining the readout later reuses the same
recording, because model weights are injected data (§2.3).

Run:  python examples/digit_recognition.py
"""

import numpy as np

from repro import OURS_MDS, RecordSession, Replayer, generate_weights, native_run
from repro.core.testbed import ClientDevice
from repro.ml.datasets import accuracy, fit_readout, synthetic_digits
from repro.ml.models import mnist
from repro.ml.runner import reference_forward


def main() -> None:
    graph = mnist()

    print("1. training the readout on 300 synthetic digits "
          "(frozen random conv features + ridge regression)")
    train_x, train_y = synthetic_digits(300, seed=1)
    weights = fit_readout(graph, generate_weights(graph, 0),
                          train_x, train_y)
    test_x, test_y = synthetic_digits(60, seed=2)

    ref_outputs = np.stack([reference_forward(graph, weights, img)
                            for img in test_x])
    ref_acc = accuracy(ref_outputs, test_y)
    print(f"   reference accuracy on 60 held-out digits: {ref_acc:.1%}")

    print("2. recording the network once via the cloud (dry run)")
    session = RecordSession(graph, config=OURS_MDS)
    record = session.run()
    print(f"   {record.stats.recording_delay_s:.1f} simulated s, "
          f"{record.stats.gpu_jobs} GPU jobs")

    print("3. classifying the test set inside the TEE (batched replay)")
    device = ClientDevice.for_workload(graph)
    replayer = Replayer(device.optee, device.gpu, device.mem, device.clock,
                        verify_key=session.service.recording_key)
    replay = replayer.open(replayer.load(record.recording.to_bytes()),
                           weights)
    results = replay.run_batch(list(test_x))
    tee_outputs = np.stack([r.output for r in results])
    tee_acc = accuracy(tee_outputs, test_y)
    per_frame_ms = 1e3 * sum(r.delay_s for r in results) / len(results)
    print(f"   TEE accuracy: {tee_acc:.1%} at {per_frame_ms:.1f} ms/digit")

    print("4. cross-checking against native (insecure) execution")
    native = native_run(graph, test_x[0], weights=weights)
    assert np.allclose(native.output, tee_outputs[0], atol=1e-3)
    assert tee_acc == ref_acc
    mismatches = int((tee_outputs.argmax(axis=1)
                      != ref_outputs.argmax(axis=1)).sum())
    print(f"   native/TEE/reference agree; {mismatches} prediction "
          f"mismatches out of {len(test_y)}")

    print("\nSame model, same accuracy, no GPU stack and no plaintext "
          "weights outside the TEE.")


if __name__ == "__main__":
    main()
