#!/usr/bin/env python3
"""Why cloud recording: GPU SKU diversity and per-SKU binding (§2.4, §3).

Developers ship hardware-neutral GPU programs; recordings, by contrast,
bind to the exact GPU SKU — the JIT bakes core-count-specific tiling into
shaders, page-table formats differ between GPU generations, and replay
breaks on any mismatch.  With ~80 SKUs in the wild, nobody can pre-record
on developer machines; GR-T records against *your* GPU via one cloud VM
image that carries a whole driver family.

This example:
1. prints the SKU landscape (Figure 3's data);
2. records the same workload for three different Mali SKUs through the
   same cloud service (one VM image, per-SKU device trees);
3. shows each recording replays on its own SKU and is rejected on the
   others.

Run:  python examples/sku_diversity.py
"""

import numpy as np

from repro import OURS_MDS, RecordSession, Replayer, generate_weights
from repro.core.replayer import ReplayError
from repro.core.testbed import ClientDevice
from repro.hw.sku import SKU_DATABASE, find_sku, new_skus_per_year
from repro.ml.models import mnist
from repro.ml.runner import reference_forward

CLIENT_SKUS = ["Mali-G71 MP8", "Mali-G72 MP12", "Mali-T880 MP4"]


def print_landscape() -> None:
    per_year = new_skus_per_year()
    print(f"mobile GPU SKUs in the database: {len(SKU_DATABASE)}")
    print("new SKUs per year (Figure 3):")
    for year in sorted(per_year):
        print(f"  {year}: {'#' * per_year[year]} ({per_year[year]})")


def main() -> None:
    print_landscape()
    graph = mnist()
    weights = generate_weights(graph, seed=0)
    rng = np.random.RandomState(3)
    image = rng.rand(*graph.input_shape).astype(np.float32)
    expected = reference_forward(graph, weights, image)

    print("\nrecording the same workload for three client SKUs "
          "(one cloud image, per-SKU device trees):")
    recordings = {}
    services = {}
    for name in CLIENT_SKUS:
        sku = find_sku(name)
        session = RecordSession(mnist(), config=OURS_MDS, sku=sku,
                                client_id=f"device-{name}")
        result = session.run()
        recordings[name] = result.recording.to_bytes()
        services[name] = session.service
        print(f"  {name:15s} (pte_format={sku.pte_format}, "
              f"{sku.core_count} cores): "
              f"{result.stats.gpu_jobs} jobs recorded, "
              f"tile_size baked into shaders = {16 * sku.core_count}")

    print("\nreplay matrix (rows: recording, cols: device):")
    header = "  " + " " * 16 + "".join(f"{n:>16s}" for n in CLIENT_SKUS)
    print(header)
    for rec_sku in CLIENT_SKUS:
        row = f"  {rec_sku:16s}"
        for dev_sku in CLIENT_SKUS:
            device = ClientDevice.for_workload(graph,
                                               sku=find_sku(dev_sku))
            replayer = Replayer(device.optee, device.gpu, device.mem,
                                device.clock,
                                services[rec_sku].recording_key)
            recording = replayer.load(recordings[rec_sku])
            try:
                out = replayer.replay(recording, image, weights)
                ok = np.allclose(out.output, expected, atol=1e-3)
                row += f"{'OK' if ok else 'WRONG':>16s}"
                assert rec_sku == dev_sku, "cross-SKU replay succeeded!"
            except ReplayError:
                row += f"{'rejected':>16s}"
                assert rec_sku != dev_sku, "own-SKU replay rejected!"
        print(row)

    print("\nEvery recording replays only on the SKU it was recorded "
          "against — which is exactly why recording must happen against "
          "the client's own GPU (§2.4), and why the cloud dry-run "
          "architecture exists.")


if __name__ == "__main__":
    main()
