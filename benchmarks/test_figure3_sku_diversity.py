"""Figure 3: numbers of new mobile GPU SKUs per year.

The paper's point: ~80 SKUs on smartphones, no dominant SKU, new SKUs
rolled out every year — which is why per-SKU recording on developer
machines is impractical (§2.4).
"""

from repro.analysis.report import format_table, save_report
from repro.hw.sku import SKU_DATABASE, new_skus_per_year

from conftest import run_benchmark


def build_figure3():
    per_year = new_skus_per_year()
    families = ("adreno", "mali-midgard", "mali-bifrost", "powervr")
    per_family = {f: new_skus_per_year(f) for f in families}
    rows = []
    for year in sorted(per_year):
        rows.append([year]
                    + [per_family[f].get(year, 0) for f in families]
                    + [per_year[year]])
    table = format_table(
        "Figure 3 - new mobile GPU SKUs per year",
        ["year", "adreno", "midgard", "bifrost", "powervr", "total"],
        rows)
    return per_year, table


def test_figure3_sku_diversity(benchmark):
    per_year, table = run_benchmark(benchmark, build_figure3)
    print("\n" + table)
    save_report("figure3_sku_diversity", table)

    total = sum(per_year.values())
    benchmark.extra_info["total_skus"] = total
    # "around 80 SKUs are seen on today's smartphones"
    assert total >= 70
    # "new SKUs are rolled out frequently": every year since 2012 has some
    assert all(per_year.get(y, 0) >= 3 for y in range(2013, 2022))
    # "no SKUs are dominating": no single year dwarfs the rest
    assert max(per_year.values()) <= 0.3 * total
