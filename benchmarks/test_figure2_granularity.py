"""Figure 2 / §2.3: recording granularity — composability vs efficiency.

"Developers may create one monolithic recording for all the NN layers
[or] a sequence of recordings, one for each NN layer ... a tradeoff
between composability and efficiency."  This benchmark prices the
tradeoff on MNIST:

* monolithic replay (one pass, final output only);
* streamed replay (one pass, every layer activation surfaced);
* prefix replay per layer (maximum composability: each inspection point
  re-runs the prefix);
* batch replay (amortized session setup across frames — the
  video-analytics usage the paper motivates).
"""

import numpy as np

from repro.analysis.report import format_table, save_report
from repro.core.recorder import OURS_MDS, RecordSession
from repro.core.replayer import Replayer
from repro.core.testbed import ClientDevice
from repro.ml.models import mnist
from repro.ml.runner import generate_weights

from conftest import run_benchmark


def build_granularity():
    graph = mnist()
    session = RecordSession(graph, config=OURS_MDS)
    record = session.run()
    device = ClientDevice.for_workload(graph)
    replayer = Replayer(device.optee, device.gpu, device.mem, device.clock,
                        verify_key=session.service.recording_key)
    recording = replayer.load(record.recording.to_bytes())
    replay = replayer.open(recording, generate_weights(graph, 0))
    inp = np.zeros(graph.input_shape, dtype=np.float32)

    monolithic = replay.run(inp).delay_s
    streamed = replay.run_streamed(inp, lambda l, a: False).delay_s
    prefixes = sum(replay.run_prefix(inp, upto=n.name).delay_s
                   for n in graph.nodes)
    batch = replay.run_batch([inp] * 8)
    batch_per_frame = sum(r.delay_s for r in batch) / len(batch)

    return [
        ["monolithic run()", monolithic * 1e3, 1],
        ["streamed (all activations)", streamed * 1e3, len(graph.nodes)],
        ["prefix per layer", prefixes * 1e3, len(graph.nodes)],
        ["batch of 8, per frame", batch_per_frame * 1e3, 1],
    ]


def test_figure2_granularity(benchmark):
    rows = run_benchmark(benchmark, build_granularity)
    table = format_table(
        "Figure 2 - replay granularity tradeoff (mnist, delay in ms)",
        ["mode", "delay_ms", "inspection_points"], rows)
    print("\n" + table)
    save_report("figure2_granularity", table)

    by_mode = {r[0]: r[1] for r in rows}
    # Streaming surfaces every layer for (near) the monolithic price...
    assert by_mode["streamed (all activations)"] < \
        1.5 * by_mode["monolithic run()"]
    # ...while prefix-per-layer pays quadratically for composability.
    assert by_mode["prefix per layer"] > \
        2 * by_mode["streamed (all activations)"]
    # Batching amortizes the per-session setup below a one-shot run.
    assert by_mode["batch of 8, per frame"] < by_mode["monolithic run()"]
