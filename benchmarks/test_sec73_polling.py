"""§7.3 "Polling offloading": polling-loop counts and the round trips the
offload saves.

Paper shape: 117-492 polling instances per workload generating 130-550
round trips without offloading; with offload+speculation each polling
instance costs at most one RTT, saving 13-58 RTTs per benchmark.
"""

from repro.analysis.report import format_table, save_report
from repro.core.recorder import OURS_MDS, RecorderConfig, RecordSession
from repro.core.speculation import CommitHistory
from repro.ml.models import build_model

from conftest import run_benchmark

# OursMDS with polling offload disabled: the ablation comparator.
OURS_MDS_NO_POLL = RecorderConfig(
    "OursMDS-nopoll", meta_only_sync=True, defer=True, speculate=True,
    offload_polls=False, compress=True)

POLL_WORKLOADS = ("mnist", "squeezenet", "resnet12")


def build_polling_comparison():
    rows = []
    for name in POLL_WORKLOADS:
        history = CommitHistory()
        for _ in range(3):
            RecordSession(name, config=OURS_MDS, history=history).run()
        with_offload = RecordSession(name, config=OURS_MDS,
                                     history=history).run()

        history_np = CommitHistory()
        for _ in range(3):
            RecordSession(name, config=OURS_MDS_NO_POLL,
                          history=history_np).run()
        without = RecordSession(name, config=OURS_MDS_NO_POLL,
                                history=history_np).run()

        polls = with_offload.stats.commits.polls_offloaded
        rows.append([
            name, polls,
            without.stats.blocking_rtts, with_offload.stats.blocking_rtts,
            without.stats.blocking_rtts - with_offload.stats.blocking_rtts,
        ])
    return rows


def test_sec73_polling_offload(benchmark):
    rows = run_benchmark(benchmark, build_polling_comparison)
    table = format_table(
        "§7.3 - polling-loop offloading (wifi, warm history)",
        ["workload", "polling_instances", "RTTs_no_offload",
         "RTTs_offload", "RTTs_saved"],
        rows)
    print("\n" + table)
    save_report("sec73_polling", table)

    for name, polls, rtts_without, rtts_with, saved in rows:
        # Polling instances scale with jobs (paper: 117 for MNIST up to
        # 492 for VGG16).
        assert polls > 20, f"{name}: too few polling instances"
        # Offloading strictly reduces blocking round trips.
        assert saved > 0, f"{name}: offloading saved nothing"

    # Bigger workloads have more polling instances.
    by_name = {r[0]: r[1] for r in rows}
    assert by_name["squeezenet"] > by_name["mnist"]
    benchmark.extra_info["polling_instances"] = by_name
