"""§3.3: why long recording delays render naive forwarding unusable.

The paper lists four consequences of slow recording; this benchmark
quantifies the three measurable ones:

1. timing assumptions break — jobs exceed the driver's nominal timeout,
   the source of the paper's "GPU stack constantly throws exceptions";
2. interactivity suffers — the TEE holds the GPU exclusively for the
   whole record run, blocking normal-world apps;
3. cost-effectiveness — a dedicated cloud VM is held per run (priced in
   test_ablations.py::test_ablation_cloud_cost).
"""

from repro.analysis.report import format_table, save_report
from repro.core.recorder import NAIVE, OURS_MDS, RecordSession
from repro.core.speculation import CommitHistory
from repro.sim.network import CELLULAR

from conftest import run_benchmark

WORKLOADS = ("mnist", "squeezenet")


def build_practicality():
    rows = []
    for name in WORKLOADS:
        naive = RecordSession(name, config=NAIVE,
                              link_profile=CELLULAR).run()
        history = CommitHistory()
        mds = None
        for _ in range(4):
            mds = RecordSession(name, config=OURS_MDS,
                                link_profile=CELLULAR,
                                history=history).run()
        rows.append([name, "Naive", naive.stats.timeout_violations,
                     naive.stats.recording_delay_s])
        rows.append([name, "OursMDS", mds.stats.timeout_violations,
                     mds.stats.recording_delay_s])
    return rows


def test_sec33_timing_and_interactivity(benchmark):
    rows = run_benchmark(benchmark, build_practicality)
    table = format_table(
        "§3.3 - nominal-timeout violations and GPU lock time (cellular)",
        ["workload", "recorder", "timeout_violations",
         "gpu_locked_seconds"],
        rows)
    print("\n" + table)
    save_report("sec33_practicality", table)

    by_key = {(r[0], r[1]): r for r in rows}
    for name in WORKLOADS:
        naive = by_key[(name, "Naive")]
        mds = by_key[(name, "OursMDS")]
        # Naive job waits blow the 2 s nominal timeout a production
        # driver would use; GR-T's never do.
        assert naive[2] >= 1, f"{name}: naive never hit a nominal timeout"
        assert mds[2] == 0, f"{name}: OursMDS violated a nominal timeout"
        # Interactivity: the normal world gets its GPU back much sooner.
        assert mds[3] < 0.5 * naive[3]
