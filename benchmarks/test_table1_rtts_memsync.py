"""Table 1: statistics of record runs — GPU jobs per workload, blocking
round trips per recorder variant, and memory synchronization traffic.

Paper shape: deferral cuts RTTs ~73%, speculation a further ~86%; meta-
only sync cuts memsync traffic 72-99%; deferral batches ~3.8 accesses per
commit.
"""

from repro.analysis.report import format_table, percent_change, save_report

from conftest import WORKLOADS, run_benchmark


def build_table1(grid):
    rows = []
    for name in WORKLOADS:
        m = grid.stats(name, "OursM")
        md = grid.stats(name, "OursMD")
        mds = grid.stats(name, "OursMDS")
        naive = grid.stats(name, "Naive")
        rows.append([
            f"{name} ({m.gpu_jobs})",
            m.blocking_rtts, md.blocking_rtts, mds.blocking_rtts,
            naive.memsync.wire_total_bytes / 1e6,
            m.memsync.wire_total_bytes / 1e6,
        ])
    table = format_table(
        "Table 1 - record-run statistics (wifi)",
        ["NN (#jobs)", "RTTs OursM", "RTTs OursMD", "RTTs OursMDS",
         "MemSync MB Naive", "MemSync MB OursM"],
        rows)
    return rows, table


def test_table1_blocking_rtts(benchmark, eval_grid):
    rows, table = run_benchmark(benchmark, lambda: build_table1(eval_grid))
    print("\n" + table)
    save_report("table1_rtts_memsync", table)

    deferral_cuts = []
    spec_cuts = []
    for row in rows:
        label, m, md, mds, naive_mb, ours_mb = row
        deferral_cuts.append(percent_change(m, md))
        spec_cuts.append(percent_change(md, mds))
        # Monotone improvement per workload.
        assert m > md > mds, f"{label}: RTT ordering broken"

    avg_deferral = sum(deferral_cuts) / len(deferral_cuts)
    avg_spec = sum(spec_cuts) / len(spec_cuts)
    benchmark.extra_info["deferral_rtt_reduction_pct"] = avg_deferral
    benchmark.extra_info["speculation_rtt_reduction_pct"] = avg_spec
    # Paper: deferral reduces round trips by 73% on average; speculation
    # by a further 86%.  Require the same order of effect.
    assert avg_deferral > 40.0
    assert avg_spec > 50.0


def test_table1_memsync_traffic(benchmark, eval_grid):
    def build():
        reductions = []
        for name in WORKLOADS:
            naive = eval_grid.stats(name, "Naive").memsync.wire_total_bytes
            ours = eval_grid.stats(name, "OursM").memsync.wire_total_bytes
            reductions.append((name, naive, ours,
                               percent_change(naive, ours)))
        return reductions

    reductions = run_benchmark(benchmark, build)
    table = format_table(
        "Table 1 (cont.) - memsync traffic reduction",
        ["workload", "naive_bytes", "ours_bytes", "reduction_pct"],
        reductions)
    print("\n" + table)
    save_report("table1_memsync_reduction", table)
    for name, naive, ours, cut in reductions:
        # Paper: 72-99% reduced traffic.
        assert cut > 60.0, f"{name}: meta-only sync only cut {cut:.0f}%"
    # Big NNs move the most data under Naive (ordering claim).
    naive_mb = {name: eval_grid.stats(name, "Naive")
                .memsync.wire_total_bytes for name in WORKLOADS}
    assert naive_mb["vgg16"] == max(naive_mb.values())
    assert naive_mb["mnist"] == min(naive_mb.values())


def test_table1_accesses_per_commit(benchmark, eval_grid):
    def build():
        return [(name,
                 eval_grid.stats(name, "OursMD").accesses_per_commit)
                for name in WORKLOADS]

    rows = run_benchmark(benchmark, build)
    table = format_table("§7.3 - register accesses per commit (OursMD)",
                         ["workload", "accesses/commit"], rows)
    print("\n" + table)
    save_report("sec73_accesses_per_commit", table)
    # Paper: each commit encloses 3.8 accesses on average; ours must at
    # least batch meaningfully (>1.5).
    avg = sum(r[1] for r in rows) / len(rows)
    benchmark.extra_info["avg_accesses_per_commit"] = avg
    assert avg > 1.5
