"""Wall-clock acceptance benchmark for the compiled-recording fast path.

Unlike every other benchmark in this directory (which measure *simulated*
time), this one measures real elapsed seconds via
:mod:`repro.analysis.perf` and asserts the PR's headline numbers:

* replaying the streaming-regime workload (alexnet/Naive) through the
  columnar compiled program is at least 3x faster than the legacy
  per-entry interpreter, with bit-identical outputs, virtual-clock
  delays, and replay statistics;
* the §5 memsync encode path (single encode per page + unchanged-page
  skip) is at least 3x faster than the seed double-encode path in
  steady state, leaving the peer view byte-identical;
* the harness emits ``BENCH_replay.json`` at the repository root.

The control-plane regime (mnist/OursMDS) is reported but not gated on a
ratio: its replay cost is real job execution and blocking polls that
both engines share, so ~1x is the expected result there (see
docs/API.md).
"""

import json
import os

import pytest

from repro.analysis import perf

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(scope="module")
def bench_doc():
    doc = perf.run_perf(reps=5, epochs=6)
    perf.write_bench(doc, os.path.join(REPO_ROOT, perf.BENCH_FILENAME))
    return doc


def _streaming(doc):
    return next(r for r in doc["replay"] if r["workload"] == "alexnet")


class TestReplaySpeedup:
    def test_engines_bit_identical(self, bench_doc):
        for run in bench_doc["replay"]:
            for check, ok in run["identical"].items():
                assert ok, f"{run['workload']}: engines diverged on {check}"

    def test_streaming_replay_at_least_3x(self, bench_doc):
        run = _streaming(bench_doc)
        assert run["speedup_best"] >= 3.0, (
            f"compiled replay only {run['speedup_best']:.2f}x over legacy "
            f"(median {run['speedup_median']:.2f}x)")

    def test_recording_blob_untouched_by_compile(self, bench_doc):
        for run in bench_doc["replay"]:
            assert run["identical"]["recording_digest"]


class TestMemsyncSpeedup:
    def test_encode_at_least_3x(self, bench_doc):
        m = bench_doc["memsync"][0]
        assert m["speedup"] >= 3.0, (
            f"memsync encode only {m['speedup']:.2f}x over the seed path")

    def test_peer_views_identical(self, bench_doc):
        assert bench_doc["memsync"][0]["peer_views_equal"]

    def test_skip_and_single_encode_active(self, bench_doc):
        m = bench_doc["memsync"][0]
        # The optimized path must actually skip unchanged re-dirty pages
        # and must never encode more than one pass per shipped page.
        assert m["optimized"]["pages_skipped"] > 0
        assert m["optimized"]["encodes"] < m["legacy"]["encodes"]


class TestColdStart:
    """The artifact store's headline: a restarted worker opens its
    compiled program (np.memmap) instead of recompiling it."""

    def test_store_hit_at_least_10x_over_cold_compile(self, bench_doc):
        row = bench_doc["cold_start"][0]
        assert row["workload"] == "alexnet"
        assert row["speedup_acquire"] >= 10.0, (
            f"store-hit acquire only {row['speedup_acquire']:.1f}x over "
            f"compile+publish (cold {row['cold']['acquire_s'] * 1e3:.1f} ms,"
            f" hit {row['store_hit']['acquire_s'] * 1e3:.2f} ms)")

    def test_store_hit_replay_bit_identical(self, bench_doc):
        row = bench_doc["cold_start"][0]
        for check, ok in row["identical"].items():
            assert ok, f"store-hit replay diverged on {check}"

    def test_data_page_elision_bounds_artifact(self, bench_doc):
        # alexnet/Naive's raw memory image is ~116 MB; elision of the
        # protected data pages must keep the artifact around 1 MB.
        row = bench_doc["cold_start"][0]
        assert 0 < row["artifact_bytes"] < 5_000_000

    def test_cross_tenant_open_rejected(self, bench_doc):
        assert bench_doc["cold_start"][0]["cross_tenant_rejected"]

    def test_end_to_end_first_request_improves(self, bench_doc):
        # Not a hard gate (dominated by recording-load + weight install,
        # both engine-independent), but the store must never make the
        # first request slower.
        row = bench_doc["cold_start"][0]
        assert row["speedup_first_request"] > 1.0


class TestArtifact:
    def test_bench_json_emitted(self, bench_doc):
        path = os.path.join(REPO_ROOT, perf.BENCH_FILENAME)
        with open(path) as fh:
            doc = json.load(fh)
        assert doc["schema"] == perf.BENCH_SCHEMA
        assert doc["replay"] and doc["memsync"]

    def test_baseline_gate_passes_here(self, bench_doc):
        with open(os.path.join(REPO_ROOT, "benchmarks",
                               "perf_baseline.json")) as fh:
            baseline = json.load(fh)
        failures = perf.compare_baseline(bench_doc, baseline)
        assert not failures, failures
