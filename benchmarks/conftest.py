"""Shared evaluation state for the benchmark harness.

Record runs are expensive (full dry run of each NN through the simulated
stack), so the full evaluation grid — 6 workloads x 4 recorder variants x
2 network profiles, plus native and replay runs — is produced once per
pytest session and shared by every table/figure benchmark, exactly as the
paper runs its benchmark suite once with history retained in between
(§7.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np
import pytest

from repro.core.recorder import (
    NAIVE,
    OURS_M,
    OURS_MD,
    OURS_MDS,
    RecordResult,
    RecordSession,
)
from repro.core.replayer import Replayer, ReplayResult
from repro.core.speculation import CommitHistory
from repro.core.testbed import ClientDevice, NativeResult, native_run
from repro.ml.models import PAPER_WORKLOADS, build_model
from repro.ml.runner import generate_weights
from repro.sim.network import CELLULAR, WIFI, LinkProfile

WORKLOADS = ("mnist", "alexnet", "mobilenet", "squeezenet", "resnet12",
             "vgg16")
VARIANTS = (NAIVE, OURS_M, OURS_MD, OURS_MDS)
LINKS = (WIFI, CELLULAR)

# Keep recordings only where replay benchmarks need them.
_KEEP_RECORDING = {("mnist", "OursMDS", "wifi")}


@dataclass
class EvalGrid:
    """All measured results of the evaluation."""

    records: Dict[Tuple[str, str, str], RecordResult] = field(
        default_factory=dict)
    natives: Dict[str, NativeResult] = field(default_factory=dict)
    replays: Dict[str, ReplayResult] = field(default_factory=dict)

    def record(self, workload: str, variant: str, link: str) -> RecordResult:
        return self.records[(workload, variant, link)]

    def stats(self, workload: str, variant: str, link: str = "wifi"):
        return self.record(workload, variant, link).stats


def _run_grid() -> EvalGrid:
    grid = EvalGrid()
    # History is retained across all benchmarks for the speculating
    # recorder (§7.3's methodology); warm it once so OursMDS numbers are
    # steady state rather than first-contact.
    history = CommitHistory()
    for _ in range(3):
        RecordSession("mnist", config=OURS_MDS, history=history).run()

    for link in LINKS:
        for name in WORKLOADS:
            graph = build_model(name)
            for config in VARIANTS:
                session = RecordSession(
                    graph if config is not OURS_MDS else build_model(name),
                    config=config,
                    link_profile=link,
                    history=history if config is OURS_MDS else None,
                )
                result = session.run()
                key = (name, config.name, link.name)
                if key not in _KEEP_RECORDING:
                    result.recording.entries = []  # free memory
                else:
                    grid._mnist_session = session
                grid.records[key] = result

    # Native + replay delays (Table 2, Figure 9): link-independent.
    for name in WORKLOADS:
        graph = build_model(name)
        rng = np.random.RandomState(42)
        inp = rng.rand(*graph.input_shape).astype(np.float32)
        weights = generate_weights(graph, seed=0)
        grid.natives[name] = native_run(graph, inp, weights=weights)

        session = RecordSession(graph, config=OURS_MDS, history=history)
        record = session.run()
        device = ClientDevice.for_workload(graph)
        replayer = Replayer(device.optee, device.gpu, device.mem,
                            device.clock, session.service.recording_key)
        recording = replayer.load(record.recording.to_bytes())
        # Weights are installed once per opened session (resident in TEE
        # memory); Table 2 measures the steady-state per-inference delay.
        replay_session = replayer.open(recording, weights)
        replay_session.run(inp)  # warm (first-touch effects)
        grid.replays[name] = replay_session.run(inp)
    return grid


def _dump_grid_summary(grid: EvalGrid) -> None:
    """Machine-readable companion to the printed tables."""
    import json
    import os
    from repro.analysis.report import RESULTS_DIR
    summary = {"records": {}, "natives": {}, "replays": {}}
    for (workload, variant, link), result in grid.records.items():
        s = result.stats
        summary["records"]["/".join((workload, variant, link))] = {
            "recording_delay_s": s.recording_delay_s,
            "blocking_rtts": s.blocking_rtts,
            "reg_accesses": s.reg_accesses,
            "gpu_jobs": s.gpu_jobs,
            "memsync_wire_bytes": s.memsync.wire_total_bytes,
            "client_energy_j": s.client_energy_j,
            "speculation_rate": (s.commits.speculation_rate
                                 if s.commits else 0.0),
            "vm_seconds": s.vm_seconds,
        }
    for name, native in grid.natives.items():
        summary["natives"][name] = {"delay_s": native.delay_s,
                                    "energy_j": native.energy_j}
    for name, replay in grid.replays.items():
        summary["replays"][name] = {"delay_s": replay.delay_s,
                                    "energy_j": replay.energy_j}
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "grid_summary.json"), "w") as fh:
        json.dump(summary, fh, indent=2)


@pytest.fixture(scope="session")
def eval_grid() -> EvalGrid:
    grid = _run_grid()
    _dump_grid_summary(grid)
    return grid


def run_benchmark(benchmark, fn):
    """Run a harness function once under pytest-benchmark.

    These benchmarks measure *simulated* time; pytest-benchmark's own
    wall-clock numbers just document the cost of regenerating each
    table/figure.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
