"""Table 2: replay delays vs native execution.

Paper shape: replay is faster for most workloads (25% lower on average)
because it removes the GPU stack; for GPU-bound workloads the two
converge (ResNet12/VGG16 within a few percent).
"""

from repro.analysis.report import format_table, percent_change, save_report

from conftest import WORKLOADS, run_benchmark


def build_table2(grid):
    rows = []
    for name in WORKLOADS:
        native_ms = grid.natives[name].delay_s * 1e3
        replay_ms = grid.replays[name].delay_s * 1e3
        rows.append([name, native_ms, replay_ms,
                     percent_change(native_ms, replay_ms)])
    return rows


def test_table2_replay_delays(benchmark, eval_grid):
    rows = run_benchmark(benchmark, lambda: build_table2(eval_grid))
    table = format_table(
        "Table 2 - replay vs native delays (ms)",
        ["workload", "Native", "OursMDS replay", "reduction_pct"], rows)
    print("\n" + table)
    save_report("table2_replay_delays", table)

    reductions = [r[3] for r in rows]
    avg = sum(reductions) / len(reductions)
    benchmark.extra_info["avg_replay_reduction_pct"] = avg

    # Paper: replay delays range from 68% lower to 3% higher; 25% lower
    # on average.  Require: average reduction positive and sizeable, no
    # workload catastrophically slower.
    assert avg > 10.0
    for name, native_ms, replay_ms, cut in rows:
        assert cut > -15.0, f"{name}: replay {-cut:.0f}% slower than native"

    # Small stack-bound NNs benefit most; GPU-bound NNs converge.
    by_name = {r[0]: r[3] for r in rows}
    assert by_name["mnist"] > by_name["vgg16"]


def test_table2_replay_correct_output(benchmark, eval_grid):
    """The replayed delays only count if the replayed computation is
    right: outputs must be valid distributions (post-softmax)."""
    def check():
        ok = 0
        for name in WORKLOADS:
            out = eval_grid.replays[name].output
            assert abs(out.sum() - 1.0) < 1e-3, f"{name}: not a softmax"
            assert (out >= 0).all()
            ok += 1
        return ok

    ok = run_benchmark(benchmark, check)
    assert ok == len(WORKLOADS)
