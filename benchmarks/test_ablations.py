"""Ablations of GR-T's design choices beyond the paper's headline grid:

* speculation confidence window k (the paper sets k=3 "as a configurable
  parameter controlling confidence");
* dump compression on/off (§5's delta + range coding);
* the secure-channel / attestation overhead the paper calls negligible.
"""

from repro.analysis.report import format_table, save_report
from repro.core.recorder import (
    OURS_M,
    OURS_MDS,
    RecorderConfig,
    RecordSession,
)
from repro.core.speculation import CommitHistory

from conftest import run_benchmark

WORKLOAD = "mnist"


def _config_with(name, **overrides):
    base = dict(meta_only_sync=OURS_MDS.meta_only_sync,
                defer=OURS_MDS.defer, speculate=OURS_MDS.speculate,
                offload_polls=OURS_MDS.offload_polls,
                compress=OURS_MDS.compress,
                spec_window=OURS_MDS.spec_window)
    base.update(overrides)
    return RecorderConfig(name, **base)


def build_window_sweep():
    rows = []
    for k in (1, 2, 3, 5):
        config = _config_with(f"OursMDS-k{k}", spec_window=k)
        history = CommitHistory(k)
        result = None
        for _ in range(max(k, 3) + 1):
            result = RecordSession(WORKLOAD, config=config,
                                   history=history,
                                   max_recovery_attempts=60).run()
        rows.append([k, result.stats.recording_delay_s,
                     result.stats.blocking_rtts,
                     100.0 * result.stats.commits.speculation_rate,
                     result.stats.recoveries])
    return rows


def test_ablation_speculation_window(benchmark):
    rows = run_benchmark(benchmark, build_window_sweep)
    table = format_table(
        "Ablation - speculation confidence window k (mnist, wifi)",
        ["k", "delay_s", "blocking_rtts", "spec_rate_pct", "recoveries"],
        rows)
    print("\n" + table)
    save_report("ablation_spec_window", table)
    by_k = {r[0]: r for r in rows}
    # k=1 predicts from a single observation: it keeps speculating on the
    # nondeterministic LATEST_FLUSH read, mispredicting and rolling back
    # once per job — the reason the paper acts "conservatively".
    assert by_k[1][4] > 0
    assert by_k[1][1] > by_k[3][1]  # k=1 is slower end to end
    # With k>=2 the unanimity criterion filters LATEST_FLUSH: no natural
    # mispredictions on this deterministic GPU (§7.3: none in 1000 runs).
    for k in (2, 3, 5):
        assert by_k[k][4] == 0, f"k={k} mispredicted"


def build_compression_ablation():
    rows = []
    for compress in (True, False):
        config = _config_with(f"OursM-{'zip' if compress else 'raw'}",
                              defer=False, speculate=False,
                              offload_polls=False, compress=compress)
        result = RecordSession(WORKLOAD, config=config).run()
        rows.append(["on" if compress else "off",
                     result.stats.memsync.wire_total_bytes,
                     result.stats.memsync.raw_total_bytes,
                     result.stats.recording_delay_s])
    return rows


def test_ablation_compression(benchmark):
    rows = run_benchmark(benchmark, build_compression_ablation)
    table = format_table(
        "Ablation - dump compression (meta-only sync, mnist, wifi)",
        ["compression", "wire_bytes", "raw_bytes", "delay_s"], rows)
    print("\n" + table)
    save_report("ablation_compression", table)
    wire_on = rows[0][1]
    wire_off = rows[1][1]
    # §5: delta + run-length coding shrinks the dumps substantially.
    assert wire_on < 0.7 * wire_off
    # And raw bytes are policy-determined, not compression-determined.
    assert rows[0][2] == rows[1][2]


def build_cloud_cost():
    """§3.3: each record run holds a dedicated VM; long Naive runs make
    GR-T "less cost-effective".  Price the VM time per recording."""
    from repro.cloud.service import CostModel
    from repro.core.recorder import NAIVE
    cost = CostModel()
    rows = []
    naive = RecordSession(WORKLOAD, config=NAIVE).run()
    history = CommitHistory()
    mds = None
    for _ in range(4):
        mds = RecordSession(WORKLOAD, config=OURS_MDS,
                            history=history).run()
    for result in (naive, mds):
        rows.append([result.stats.recorder, result.stats.vm_seconds,
                     1e4 * cost.record_run_usd(result.stats.vm_seconds)])
    return rows


def test_ablation_cloud_cost(benchmark):
    rows = run_benchmark(benchmark, build_cloud_cost)
    table = format_table(
        "Ablation - cloud VM cost per record run (mnist, wifi)",
        ["recorder", "vm_seconds", "cost_e-4_usd"], rows)
    print("\n" + table)
    save_report("ablation_cloud_cost", table)
    by_name = {r[0]: r for r in rows}
    assert by_name["OursMDS"][1] < 0.5 * by_name["Naive"][1]


def build_security_overhead():
    """§7.1: secure-communication overhead is negligible vs total delay."""
    result = RecordSession(WORKLOAD, config=OURS_M).run()
    from repro.sim.network import WIFI
    handshake_s = 2 * WIFI.rtt_s  # SecureChannel.handshake_rtts
    return result.stats.recording_delay_s, handshake_s


def test_ablation_security_overhead(benchmark):
    total, handshake = run_benchmark(benchmark, build_security_overhead)
    table = format_table(
        "Ablation - secure channel overhead (mnist, OursM, wifi)",
        ["total_delay_s", "handshake_s", "share_pct"],
        [[total, handshake, 100.0 * handshake / total]])
    print("\n" + table)
    save_report("ablation_security_overhead", table)
    assert handshake / total < 0.02  # "negligible overhead"
