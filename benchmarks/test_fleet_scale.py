"""Fleet serving at scale: throughput/latency at three load levels.

Not a paper figure — the serving-layer trajectory the ROADMAP's north
star is judged against.  Three Poisson load levels run through the
multi-tenant serving layer (`repro.fleet`): a light fleet that never
queues, a moderate one that exercises the warm pool and cache, and a
saturated one where admission control must reject.  The rendered table
is the perf baseline future scaling PRs (sharding, batching,
multi-backend) diff themselves against.

Assertions pinned here:

* cached sessions (registry hit, dry run skipped) are >= 5x faster than
  cold ones at every load level — the GPUReplay reuse argument
  (arXiv:2105.05085) realized as serving capacity;
* the saturated level produces at least one explicit admission
  rejection (bounded queues, no silent collapse);
* per-tenant caching never serves one tenant's recording to another —
  the §7.1 security rule, audited over every entry after every run.
"""

from repro.analysis.report import format_table, save_report
from repro.fleet import FleetSimulation, WorkloadGenerator

from conftest import run_benchmark

# name, arrival rate (sessions/s), clients, capacity, queue limit
LOAD_LEVELS = (
    ("light", 1.0, 100, 16, 24),
    ("moderate", 4.0, 200, 16, 24),
    ("saturated", 16.0, 240, 6, 6),
)
SEED = 7


def _run_level(rate, clients, capacity, queue):
    requests = WorkloadGenerator(seed=SEED, arrival_rate_hz=rate,
                                 tenants=max(2, clients // 10),
                                 ).generate(clients)
    sim = FleetSimulation(requests, capacity=capacity,
                          warm_target=capacity // 2, queue_limit=queue)
    sim.run()
    return sim


def build_fleet_scale():
    results = []
    for name, rate, clients, capacity, queue in LOAD_LEVELS:
        sim = _run_level(rate, clients, capacity, queue)
        results.append((name, rate, sim, sim.summary()))
    return results


def test_fleet_scale_trajectory(benchmark):
    results = run_benchmark(benchmark, build_fleet_scale)

    rows = []
    for name, rate, _, doc in results:
        lat = doc["latency_s"]["overall"]
        rows.append([
            name, rate, doc["sessions"]["offered"],
            doc["sessions"]["completed"], doc["sessions"]["rejected"],
            doc["throughput_sessions_per_s"],
            lat["p50"], lat["p95"], lat["p99"],
            100 * doc["cache"]["hit_rate"],
            doc["vm"]["cost_usd"],
        ])
    table = format_table(
        "Fleet serving trajectory (seed 7; latency in seconds)",
        ["load", "rate/s", "offered", "done", "rej", "tput/s",
         "p50", "p95", "p99", "hit%", "usd"],
        rows)
    print("\n" + table)
    save_report("fleet_scale", table)

    by_name = {name: doc for name, _, _, doc in results}
    # Light load: everything admitted, nothing rejected.
    assert by_name["light"]["sessions"]["rejected"] == 0
    assert by_name["light"]["sessions"]["completed"] == 100
    # Saturated load: admission control must push back explicitly.
    assert by_name["saturated"]["sessions"]["rejected"] > 0
    # Load never loses sessions: offered == completed + rejected.
    for doc in by_name.values():
        assert doc["sessions"]["offered"] == (doc["sessions"]["completed"]
                                              + doc["sessions"]["rejected"])


def test_cached_sessions_at_least_5x_faster():
    """The registry converts repeat tenants into >=5x faster sessions."""
    for name, rate, clients, capacity, queue in LOAD_LEVELS:
        sim = _run_level(rate, clients, capacity, queue)
        doc = sim.summary()
        hit = doc["service_s"]["cache_hit"]
        miss = doc["service_s"]["cache_miss"]
        assert hit["count"] > 0, f"{name}: no cache hits"
        assert miss["count"] > 0, f"{name}: no cold sessions"
        speedup = miss["mean"] / hit["mean"]
        assert speedup >= 5.0, (
            f"{name}: cached sessions only {speedup:.1f}x faster")


def test_recordings_never_cross_tenants():
    """§7.1: audit every cached entry after a full run — a recording is
    only ever filed under, and served to, the tenant that paid for it."""
    _, rate, clients, capacity, queue = LOAD_LEVELS[1]
    sim = _run_level(rate, clients, capacity, queue)
    assert len(sim.registry) > 0
    assert sim.registry.audit_isolation() == len(sim.registry)
    # A foreign tenant looking up an existing key gets a miss, never the
    # other tenant's entry.
    owner = sim.registry.tenants()[0]
    entry = sim.registry.entries_for(owner)[0]
    assert sim.registry.lookup("tenant-outsider", entry.key) is None
