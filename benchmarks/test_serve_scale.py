"""Wall-clock acceptance benchmark for the live serving engine.

Asserts the repro.serve headline: a 2-worker shard pool sustains higher
replay throughput than a single worker on the streaming-regime workload
(alexnet), with every served output bit-identical to the in-process
single-path reference, and p99 latency within the checked-in bound.

The absolute speedup target is judged against the *machine's* measured
parallel-scaling ceiling (``measure_machine_scaling``): on dedicated
cores two processes approach 2x and the gate demands the full 1.5x; on
shared/throttled vCPUs — where even two pure-compute processes may not
reach 1.5x combined — the gate scales down to 90% of what the hardware
permits, so the engine is always held to "near the ceiling" rather than
to a number the machine cannot produce.

The harness emits ``BENCH_serve.json`` at the repository root, and the
checked-in floors in ``benchmarks/perf_baseline.json`` gate regressions
(same convention as the replay/memsync gate: absolute throughput
tolerates a 2x wall-clock swing, ratios and bit-identity do not).
"""

import json
import os

import pytest

from repro.analysis import perf

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(scope="module")
def serve_doc():
    doc = perf.run_serve_perf(quick=False)
    perf.write_bench(doc,
                     os.path.join(REPO_ROOT, perf.BENCH_SERVE_FILENAME))
    return doc


def _row(doc):
    return next(r for r in doc["serve"] if r["workload"] == "alexnet")


class TestServeScaling:
    def test_pool_outscales_single_worker(self, serve_doc):
        row = _row(serve_doc)
        ceiling = serve_doc["machine_scaling_2proc"]
        required = min(1.5, 0.9 * ceiling)
        assert row["speedup"] >= required, (
            f"2-worker pool only {row['speedup']:.2f}x over one worker "
            f"(machine ceiling {ceiling:.2f}x, required {required:.2f}x)")

    def test_traffic_spread_across_workers(self, serve_doc):
        row = _row(serve_doc)
        assert row["pool"]["distinct_pids"] == 2
        assert row["completed"] == row["requests"]

    def test_bit_identical_everywhere(self, serve_doc):
        """Pool outputs match both the in-process reference and the
        single-worker pool — concurrency changes nothing but time."""
        row = _row(serve_doc)
        assert row["bit_identical"]
        assert row["pool_matches_single_worker"]

    def test_baseline_floors_hold(self, serve_doc):
        with open(os.path.join(REPO_ROOT, "benchmarks",
                               "perf_baseline.json")) as fh:
            baseline = json.load(fh)
        failures = perf.compare_serve_baseline(serve_doc, baseline)
        assert not failures, "; ".join(failures)

    def test_bench_document_written(self, serve_doc):
        path = os.path.join(REPO_ROOT, perf.BENCH_SERVE_FILENAME)
        with open(path) as fh:
            doc = json.load(fh)
        assert doc["schema"] == perf.BENCH_SCHEMA
        assert doc["serve"][0]["workload"] == "alexnet"
