"""Figure 9: client system energy for record and replay.

Paper shape: GR-T record energy is moderate (single-digit joules, like
installing an app) and 84-99% below Naive; replay energy is tiny
(0.01-1.3 J), comparable to native execution.
"""

from repro.analysis.report import format_table, percent_change, save_report

from conftest import WORKLOADS, run_benchmark


def build_record_energy(grid):
    rows = []
    for name in WORKLOADS:
        naive = grid.stats(name, "Naive").client_energy_j
        mds = grid.stats(name, "OursMDS").client_energy_j
        rows.append([name, naive, mds, percent_change(naive, mds)])
    return rows


def test_figure9_record_energy(benchmark, eval_grid):
    rows = run_benchmark(benchmark, lambda: build_record_energy(eval_grid))
    table = format_table(
        "Figure 9a - record energy (J, client side, wifi)",
        ["workload", "Naive", "OursMDS", "reduction_pct"], rows)
    print("\n" + table)
    save_report("figure9_record_energy", table)

    for name, naive, mds, cut in rows:
        # Paper: 84-99% system-energy reduction vs Naive.
        assert cut > 50.0, f"{name}: only {cut:.0f}% energy saved"
        assert mds > 0
    reductions = [r[3] for r in rows]
    benchmark.extra_info["avg_energy_reduction_pct"] = \
        sum(reductions) / len(reductions)

    # Record energy is a one-time moderate cost (paper: 1.8-8.2 J; ours
    # must be the same order of magnitude, not hundreds of joules).
    assert max(r[2] for r in rows) < 100.0


def test_figure9_replay_energy(benchmark, eval_grid):
    def build():
        return [[name,
                 eval_grid.replays[name].energy_j,
                 eval_grid.natives[name].energy_j]
                for name in WORKLOADS]

    rows = run_benchmark(benchmark, build)
    table = format_table(
        "Figure 9b - replay energy vs native execution (J)",
        ["workload", "replay", "native"], rows)
    print("\n" + table)
    save_report("figure9_replay_energy", table)

    for name, replay_j, native_j in rows:
        # Paper: replay 0.01-1.3 J, comparable with native execution.
        assert replay_j < 10.0, f"{name}: replay energy implausible"
        assert replay_j < 3 * native_j + 1e-3
        assert replay_j > 0

    # Record (one-time) dwarfs replay (recurring) for every workload.
    for name in WORKLOADS:
        record_j = eval_grid.stats(name, "OursMDS").client_energy_j
        assert record_j > eval_grid.replays[name].energy_j
