"""Figure 7: end-to-end recording delays under WiFi and cellular
conditions, for all six NNs and all four recorder variants.

Paper shape: Naive is unusable (tens to hundreds of seconds); each
technique helps (OursM > OursMD > OursMDS); OursMDS lands in tens of
seconds, comparable to app-installation delays.
"""

import pytest

from repro.analysis.report import format_table, geomean, percent_change, save_report

from conftest import LINKS, VARIANTS, WORKLOADS, run_benchmark


def build_figure7(grid, link_name):
    rows = []
    for name in WORKLOADS:
        row = [name]
        for config in VARIANTS:
            row.append(grid.stats(name, config.name, link_name)
                       .recording_delay_s)
        rows.append(row)
    table = format_table(
        f"Figure 7{'a' if link_name == 'wifi' else 'b'} - recording "
        f"delays ({link_name}), seconds",
        ["workload", "Naive", "OursM", "OursMD", "OursMDS"],
        rows)
    return rows, table


@pytest.mark.parametrize("link_name", [l.name for l in LINKS])
def test_figure7_recording_delays(benchmark, eval_grid, link_name):
    rows, table = run_benchmark(
        benchmark, lambda: build_figure7(eval_grid, link_name))
    print("\n" + table)
    save_report(f"figure7_{link_name}", table)

    reductions = []
    for row in rows:
        name, naive, m, md, mds = row
        # Each technique strictly helps, per workload (Figure 7's bars).
        assert naive >= m * 0.99, f"{name}: meta-only sync regressed"
        assert m > md, f"{name}: deferral did not help"
        assert md > mds, f"{name}: speculation did not help"
        reductions.append(percent_change(naive, mds))

    avg_reduction = sum(reductions) / len(reductions)
    benchmark.extra_info["avg_reduction_vs_naive_pct"] = avg_reduction
    # Paper: OursMDS reduces delay by "up to 95%" / "more than one order
    # of magnitude".  Require a substantial aggregate reduction.
    assert avg_reduction > 60.0

    # Paper: with all techniques, delays are tens of seconds, acceptable
    # because comparable to app installation (10-50 s).
    mds_delays = [row[4] for row in rows]
    assert max(mds_delays) < 120.0


def test_figure7_speedup_summary(benchmark, eval_grid):
    def build():
        rows = []
        for link in LINKS:
            for name in WORKLOADS:
                naive = eval_grid.stats(name, "Naive", link.name)
                mds = eval_grid.stats(name, "OursMDS", link.name)
                rows.append([
                    link.name, name,
                    naive.recording_delay_s, mds.recording_delay_s,
                    naive.recording_delay_s / mds.recording_delay_s,
                ])
        return rows

    rows = run_benchmark(benchmark, build)
    table = format_table(
        "Figure 7 summary - Naive vs OursMDS speedup",
        ["link", "workload", "naive_s", "ours_mds_s", "speedup_x"], rows)
    print("\n" + table)
    save_report("figure7_summary", table)
    speedups = [r[4] for r in rows]
    benchmark.extra_info["geomean_speedup"] = geomean(speedups)
    assert geomean(speedups) > 3.0
