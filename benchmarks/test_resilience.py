"""Resilience: recordings survive WAN faults byte-for-byte.

The paper's determinism requirement (§2.3/§6) says the recording is the
single source of replay truth; this benchmark extends it to a faulty WAN:
under seeded loss, jitter, duplication, reorder and mid-session
disconnects, the recorder (reliable channel + checkpoint resume) must
produce a recording *byte-identical* to the fault-free run — and the
resumed recording must still verify and replay inside the client TEE.

Asserted shape:
* byte-identity under all three preset fault plans (loss-only,
  disconnect+resume, combined);
* the disconnect plans actually exercise the checkpoint/resume path;
* a resumed session's recording passes TEE signature verification and
  reproduces the reference forward pass on replay;
* recording-delay overhead under the 1%-loss plan stays within 60% of
  the fault-free baseline (each retry costs timeout + backoff; at WiFi
  RTTs that bounds the blowup well under one extra baseline).
"""

import hashlib

import numpy as np

from repro.analysis.report import (
    chaos_summary_tables,
    format_table,
    save_report,
)
from repro.core.recorder import OURS_MDS, RecordSession
from repro.core.replayer import Replayer
from repro.core.speculation import CommitHistory
from repro.core.testbed import ClientDevice
from repro.ml.models import build_model
from repro.ml.runner import generate_weights, reference_forward
from repro.resilience.experiment import DEFAULT_PLANS, run_chaos_experiment
from repro.resilience.faults import PRESETS

from conftest import run_benchmark

# Stated bound for the loss-only (1% loss) plan's recording-delay
# overhead; measured ~23% on MNIST/wifi, asserted with headroom.
LOSS_OVERHEAD_BOUND_PCT = 60.0


def build_chaos_report():
    return run_chaos_experiment(workload="mnist", plans=DEFAULT_PLANS,
                                seed=0, warm_rounds=2, sanitize=True)


def test_resilience_byte_identity(benchmark):
    report = run_benchmark(benchmark, build_chaos_report)
    summary = report.summary()
    text = chaos_summary_tables(summary)
    print("\n" + text)
    save_report("resilience_chaos", text)

    assert {r.plan for r in report.runs} == set(DEFAULT_PLANS)
    for run in report.runs:
        # The recording is bit-stable under every fault plan.
        assert run.identical, f"{run.plan}: recording diverged"
        assert run.sha256 == report.baseline_sha256, run.plan
    # The faults actually happened: loss plans retried, disconnect plans
    # resumed from a checkpoint.
    by_plan = {r.plan: r for r in report.runs}
    assert by_plan["loss-only"].retries > 0
    assert by_plan["disconnect"].resumes >= 1
    assert by_plan["combined"].resumes >= 1
    for plan in ("disconnect", "combined"):
        assert by_plan[plan].checkpoints >= 1, plan
        assert by_plan[plan].disconnect_wait_s > 0, plan
    # Stated overhead bound under 1% loss.
    loss = by_plan["loss-only"]
    assert 0.0 < loss.overhead_pct < LOSS_OVERHEAD_BOUND_PCT, (
        f"1%-loss overhead {loss.overhead_pct:.1f}% outside "
        f"(0, {LOSS_OVERHEAD_BOUND_PCT}%)")
    benchmark.extra_info["overhead_pct"] = {
        r.plan: round(r.overhead_pct, 3) for r in report.runs}


def test_resumed_recording_replays_in_tee(benchmark):
    """A session that disconnected mid-run and resumed from checkpoint
    yields a recording the client TEE verifies and replays correctly."""

    def build():
        graph = build_model("mnist")
        history = CommitHistory()
        for _ in range(2):
            RecordSession(graph, config=OURS_MDS, history=history).run()
        session = RecordSession(graph, config=OURS_MDS, history=history,
                                fault_plan=PRESETS["disconnect"])
        return graph, session, session.run()

    graph, session, result = run_benchmark(benchmark, build)
    assert result.stats.resumes >= 1, "plan did not force a resume"
    assert result.stats.checkpoints >= 1

    # Full TEE path: signature verification at load, then replay.
    device = ClientDevice.for_workload(graph)
    replayer = Replayer(device.optee, device.gpu, device.mem, device.clock,
                        verify_key=session.service.recording_key)
    recording = replayer.load(result.recording.to_bytes())
    weights = generate_weights(graph, seed=5)
    replay = replayer.open(recording, weights)
    rng = np.random.RandomState(23)
    image = rng.rand(*graph.input_shape).astype(np.float32)
    out = replay.run(image)
    expected = reference_forward(graph, weights, image)
    np.testing.assert_allclose(out.output, expected, rtol=1e-4, atol=1e-5)

    rows = [["resumes", result.stats.resumes],
            ["checkpoints", result.stats.checkpoints],
            ["recording sha256", hashlib.sha256(
                result.recording.body_bytes()).hexdigest()[:16]],
            ["replay delay (ms)", f"{out.delay_s * 1e3:.2f}"],
            ["replay class", int(out.output.argmax())]]
    table = format_table(
        "Resumed-session recording replayed in the TEE (mnist, wifi)",
        ["metric", "value"], rows)
    print("\n" + table)
    save_report("resilience_resume_replay", table)
