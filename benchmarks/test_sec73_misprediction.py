"""§7.3 "Misprediction cost": inject wrong register values, verify the
misprediction is always detected, and measure the rollback delay.

Paper shape: injection is always detected; worst-case rollback costs 1 s
(MNIST) to 3 s (VGG16), dominated by cloud-side driver reload and job
recompilation; rollback cost grows with workload size.
"""

from repro.analysis.report import format_table, save_report
from repro.core.recovery import run_misprediction_experiment

from conftest import run_benchmark

# MNIST and VGG16 bracket the workload sizes, as in the paper.
INJECTION_WORKLOADS = ("mnist", "vgg16")


def build_experiments():
    reports = {}
    for name in INJECTION_WORKLOADS:
        reports[name] = run_misprediction_experiment(
            name, warm_rounds=3, fault_read_fraction=0.55)
    return reports


def test_sec73_misprediction(benchmark):
    reports = run_benchmark(benchmark, build_experiments)
    rows = [[name, r.clean_delay_s, r.injected_delay_s, r.rollback_cost_s,
             r.recoveries]
            for name, r in reports.items()]
    table = format_table(
        "§7.3 - misprediction injection and rollback cost (s, wifi)",
        ["workload", "clean_delay", "injected_delay", "rollback_cost",
         "recoveries"],
        rows)
    print("\n" + table)
    save_report("sec73_misprediction", table)

    for name, report in reports.items():
        # "GR-T always detects mismatches ... initiating rollback."
        assert report.detected, f"{name}: injection went undetected"
        assert report.recoveries >= 1
        # Rollback is seconds, not minutes (paper: 1-3 s).
        assert 0.05 < report.rollback_cost_s < 30.0, name

    # Larger workloads pay more for rollback (driver reload + recompile).
    assert reports["vgg16"].rollback_cost_s > \
        0.5 * reports["mnist"].rollback_cost_s
    benchmark.extra_info["rollback_s"] = {
        name: r.rollback_cost_s for name, r in reports.items()}
