"""Figure 8: breakdown of speculative commits by driver-routine category
(Init / Interrupt / Power state / Polling), normalized to 100%.

Paper shape: 95% of commits satisfy the speculation criteria; the
speculated commits split across the four categories, and the residue that
cannot speculate is dominated by nondeterministic reads (LATEST_FLUSH at
job submission).
"""

from repro.analysis.report import format_table, save_report
from repro.driver.hotfuncs import CommitCategory

from conftest import WORKLOADS, run_benchmark

CATEGORIES = (CommitCategory.INIT, CommitCategory.INTERRUPT,
              CommitCategory.POWER, CommitCategory.POLLING,
              CommitCategory.OTHER)


def build_figure8(grid):
    rows = []
    for name in WORKLOADS:
        stats = grid.stats(name, "OursMDS").commits
        spec_total = max(stats.commits_speculated, 1)
        row = [f"{name} ({stats.commits_speculated})"]
        for cat in CATEGORIES:
            share = 100.0 * stats.speculated_by_category.get(cat, 0) \
                / spec_total
            row.append(share)
        row.append(100.0 * stats.speculation_rate)
        rows.append(row)
    return rows


def test_figure8_commit_breakdown(benchmark, eval_grid):
    rows = run_benchmark(benchmark, lambda: build_figure8(eval_grid))
    table = format_table(
        "Figure 8 - speculative commits by category, % (spec count in "
        "parentheses; last column = % of all commits speculated)",
        ["workload", "init", "interrupt", "power", "polling", "other",
         "spec_rate"],
        rows)
    print("\n" + table)
    save_report("figure8_commit_breakdown", table)

    for row in rows:
        name = row[0]
        init, interrupt, power, polling, other, spec_rate = row[1:]
        # The four paper categories carry the bulk of speculated commits.
        assert init + interrupt + power + polling > 60.0, name
        # Power-state and polling commits recur per job: both present.
        assert power > 0 and polling > 0 and interrupt > 0, name
        # Majority of commits speculate once history is warm (paper: 95%).
        assert spec_rate > 70.0, name


def test_figure8_nondeterministic_residue(benchmark, eval_grid):
    """The commits failing the criteria are due to nondeterministic reads
    — one LATEST_FLUSH-bearing submit commit per GPU job (§7.3)."""
    def build():
        rows = []
        for name in WORKLOADS:
            stats = eval_grid.stats(name, "OursMDS")
            sync_commits = stats.commits.commits_synchronous
            rows.append((name, stats.gpu_jobs, sync_commits))
        return rows

    rows = run_benchmark(benchmark, build)
    table = format_table(
        "Figure 8 (cont.) - non-speculated commits vs GPU jobs",
        ["workload", "gpu_jobs", "sync_commits"], rows)
    print("\n" + table)
    save_report("figure8_residue", table)
    for name, jobs, sync_commits in rows:
        # At least one unavoidable synchronous commit per job (the
        # LATEST_FLUSH submit read), but not wildly more than a few.
        assert sync_commits >= jobs
        assert sync_commits < 6 * jobs
