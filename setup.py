from setuptools import setup

# Metadata lives in pyproject.toml; this shim enables legacy editable
# installs ("setup.py develop") on environments without the wheel package.
setup()
